//! # nice-bench
//!
//! The benchmark harness that regenerates every table and figure of the
//! paper's evaluation (Section 7 and Section 8):
//!
//! * [`table1`] — exhaustive search, NICE-MC vs NO-SWITCH-REDUCTION
//!   (Table 1), including the state-space-reduction metric ρ.
//! * [`figure6`] — relative reduction of the NO-DELAY and FLOW-IR search
//!   strategies vs the full search (Figure 6).
//! * [`comparison`] — NICE vs a generic model checker baseline with no
//!   domain-specific reductions (the SPIN/JPF comparison of Section 7).
//! * [`table2`] — transitions / time to the first violation for each of the
//!   eleven bugs under the four search strategies (Table 2).
//! * [`ablation`] — the design-choice ablations called out in DESIGN.md
//!   (canonical flow tables, replay vs full state storage, coarse vs
//!   fine-grained packet processing).
//!
//! Binaries under `src/bin/` print the rows in the same shape as the paper;
//! Criterion benches under `benches/` track the runtime of representative
//! configurations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use nice_apps::scenarios::{bug_scenario, BugId};
use nice_mc::{
    CheckObserver, CheckerConfig, ExploredMode, ModelChecker, NoopObserver, ReductionKind,
    Scenario, SchedulerKind, SearchStats, StateStorage, StrategyKind,
};
use std::time::Duration;

// The JSON validator moved into `nice-mc` (the `nice-dist-v1` wire protocol
// self-validates its frames with it); re-exported here so existing
// `nice_bench::jsonv` consumers keep compiling.
pub use nice_mc::jsonv;

// The benchmark workloads moved into `nice_apps::workloads` so the
// `nice-dist` worker processes can rebuild job scenarios by spec without
// depending on this harness; the bench surface is unchanged.
pub use nice_apps::workloads::{
    chain_fault_workload, chain_ping_workload, load_balancer_workload, ping_workload,
};

/// The engine matrix the exploration benches and the CI bench gate profile:
/// the pre-COW deep-clone baseline, copy-on-write snapshots, checkpointed
/// replay, the parallel engine (both schedulers, so the work-stealing vs
/// work-donation speedup is visible in every run), the POR legs, and the
/// tiered / bitstate explored-set legs. Shared by the `parallel` and
/// `ci_gate` bins so their rows can never drift apart.
pub fn engine_configs(workers: usize) -> Vec<(String, CheckerConfig)> {
    vec![
        (
            "sequential-seed (deep clone)".into(),
            CheckerConfig {
                force_deep_clone: true,
                ..CheckerConfig::default()
            },
        ),
        ("cow-snapshot".into(), CheckerConfig::default()),
        (
            "checkpoint-replay (K=8)".into(),
            CheckerConfig::default().with_checkpoint_interval(8),
        ),
        (
            format!("parallel ({workers} workers)"),
            CheckerConfig::default().with_workers(workers),
        ),
        (
            format!("parallel donation ({workers} workers)"),
            CheckerConfig::default()
                .with_workers(workers)
                .with_scheduler(SchedulerKind::Donation),
        ),
        (
            "por (sleep sets)".into(),
            CheckerConfig::default().with_reduction(ReductionKind::Por),
        ),
        (
            format!("por + parallel ({workers} workers)"),
            CheckerConfig::default()
                .with_reduction(ReductionKind::Por)
                .with_workers(workers),
        ),
        (
            // A 1-byte budget forces every shard cold immediately: the leg
            // measures the spill + bloom + disk-probe path, not the cache.
            "tiered explored (forced spill)".into(),
            CheckerConfig::default()
                .with_explored(ExploredMode::Tiered)
                .with_mem_limit(1),
        ),
        (
            "bitstate explored (lossy)".into(),
            CheckerConfig::default().with_explored(ExploredMode::Bitstate),
        ),
    ]
}

/// Runs an exhaustive search (no property checking, no early stop) and
/// returns the search statistics.
pub fn exhaustive(scenario: Scenario, config: CheckerConfig) -> SearchStats {
    exhaustive_with(scenario, config, &mut NoopObserver)
}

/// [`exhaustive`], but driven as a check session streaming events to
/// `observer` — how the bench bins surface live progress.
pub fn exhaustive_with(
    scenario: Scenario,
    config: CheckerConfig,
    observer: &mut dyn CheckObserver,
) -> SearchStats {
    let config = CheckerConfig {
        stop_at_first_violation: false,
        ..config
    };
    ModelChecker::new(scenario, config)
        .session()
        .run_with(observer)
        .stats
}

/// One row of Table 1.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Number of concurrent pings.
    pub pings: u32,
    /// NICE-MC (canonical switch model) statistics.
    pub nice: SearchStats,
    /// NO-SWITCH-REDUCTION statistics.
    pub no_reduction: SearchStats,
}

impl Table1Row {
    /// The state-space-reduction metric ρ of Section 7.
    pub fn rho(&self) -> f64 {
        if self.no_reduction.unique_states == 0 {
            return 0.0;
        }
        (self.no_reduction.unique_states as f64 - self.nice.unique_states as f64)
            / self.no_reduction.unique_states as f64
    }
}

/// Regenerates Table 1 for the given ping counts. `max_transitions` bounds
/// each individual run (0 = unbounded, as in the paper).
pub fn table1(pings: impl IntoIterator<Item = u32>, max_transitions: u64) -> Vec<Table1Row> {
    pings
        .into_iter()
        .map(|n| {
            let config = CheckerConfig::default().with_max_transitions(max_transitions);
            Table1Row {
                pings: n,
                nice: exhaustive(ping_workload(n, true), config.clone()),
                no_reduction: exhaustive(ping_workload(n, false), config),
            }
        })
        .collect()
}

/// One row of Figure 6: the transition and CPU-time reduction of each
/// heuristic strategy relative to the full NICE-MC search.
#[derive(Debug, Clone)]
pub struct Figure6Row {
    /// Number of concurrent pings.
    pub pings: u32,
    /// Full-search statistics (the baseline).
    pub full: SearchStats,
    /// NO-DELAY statistics.
    pub no_delay: SearchStats,
    /// FLOW-IR statistics.
    pub flow_ir: SearchStats,
    /// UNUSUAL statistics (the paper omits it from the figure as "similar";
    /// reported here for completeness).
    pub unusual: SearchStats,
}

impl Figure6Row {
    /// Relative reduction (0..1) of explored transitions for a strategy.
    pub fn transition_reduction(&self, strategy: &SearchStats) -> f64 {
        if self.full.transitions == 0 {
            return 0.0;
        }
        1.0 - strategy.transitions as f64 / self.full.transitions as f64
    }

    /// Relative reduction (0..1) of CPU time for a strategy.
    pub fn time_reduction(&self, strategy: &SearchStats) -> f64 {
        let full = self.full.duration.as_secs_f64();
        if full == 0.0 {
            return 0.0;
        }
        1.0 - strategy.duration.as_secs_f64() / full
    }
}

/// Regenerates Figure 6 for the given ping counts.
pub fn figure6(pings: impl IntoIterator<Item = u32>, max_transitions: u64) -> Vec<Figure6Row> {
    pings
        .into_iter()
        .map(|n| {
            let run = |strategy: StrategyKind| {
                exhaustive(
                    ping_workload(n, true),
                    CheckerConfig::default()
                        .with_strategy(strategy)
                        .with_max_transitions(max_transitions),
                )
            };
            Figure6Row {
                pings: n,
                full: run(StrategyKind::FullDfs),
                no_delay: run(StrategyKind::NoDelay),
                flow_ir: run(StrategyKind::FlowIr),
                unusual: run(StrategyKind::Unusual),
            }
        })
        .collect()
}

/// One row of the Section 7 comparison against a generic model checker
/// baseline (SPIN/JPF stand-in): same workload, but with the coarse packet
/// processing and the canonical switch model disabled.
#[derive(Debug, Clone)]
pub struct ComparisonRow {
    /// Number of concurrent pings.
    pub pings: u32,
    /// NICE with its domain-specific model.
    pub nice: SearchStats,
    /// The generic baseline.
    pub generic: SearchStats,
}

impl ComparisonRow {
    /// How many times more transitions the generic baseline explores.
    pub fn transition_ratio(&self) -> f64 {
        if self.nice.transitions == 0 {
            return 0.0;
        }
        self.generic.transitions as f64 / self.nice.transitions as f64
    }
}

/// Regenerates the generic-model-checker comparison.
pub fn comparison(
    pings: impl IntoIterator<Item = u32>,
    max_transitions: u64,
) -> Vec<ComparisonRow> {
    pings
        .into_iter()
        .map(|n| ComparisonRow {
            pings: n,
            nice: exhaustive(
                ping_workload(n, true),
                CheckerConfig::default().with_max_transitions(max_transitions),
            ),
            generic: exhaustive(
                ping_workload(n, false),
                CheckerConfig::generic_baseline().with_max_transitions(max_transitions),
            ),
        })
        .collect()
}

/// The outcome of hunting one bug with one strategy (a cell of Table 2).
#[derive(Debug, Clone)]
pub enum BugHuntOutcome {
    /// The violation was found.
    Found {
        /// Transitions explored up to the first violation.
        transitions: u64,
        /// Wall-clock time to the first violation.
        time: Duration,
        /// The violated property.
        property: String,
    },
    /// The strategy exhausted its budget (or the reduced search space) without
    /// finding the violation — a false negative ("Missed" in Table 2).
    Missed {
        /// Transitions explored before giving up.
        transitions: u64,
        /// Wall-clock time spent.
        time: Duration,
    },
}

impl BugHuntOutcome {
    /// True if the bug was found.
    pub fn found(&self) -> bool {
        matches!(self, BugHuntOutcome::Found { .. })
    }

    /// Formats the cell the way Table 2 does: `transitions / time` or
    /// `Missed`.
    pub fn cell(&self) -> String {
        match self {
            BugHuntOutcome::Found {
                transitions, time, ..
            } => {
                format!("{} / {:.2}s", transitions, time.as_secs_f64())
            }
            BugHuntOutcome::Missed { .. } => "Missed".to_string(),
        }
    }
}

/// One row of Table 2.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// The bug.
    pub bug: BugId,
    /// One outcome per strategy, in [`StrategyKind::ALL`] order
    /// (PKT-SEQ only, NO-DELAY, FLOW-IR, UNUSUAL).
    pub outcomes: Vec<(StrategyKind, BugHuntOutcome)>,
}

/// Hunts one bug with one strategy under a transition budget.
pub fn hunt_bug(bug: BugId, strategy: StrategyKind, max_transitions: u64) -> BugHuntOutcome {
    let report = ModelChecker::new(
        bug_scenario(bug),
        CheckerConfig::default()
            .with_strategy(strategy)
            .with_max_transitions(max_transitions),
    )
    .run();
    match report.first_violation() {
        Some(v) => BugHuntOutcome::Found {
            transitions: v.transitions_explored,
            time: report.stats.duration,
            property: v.property.clone(),
        },
        None => BugHuntOutcome::Missed {
            transitions: report.stats.transitions,
            time: report.stats.duration,
        },
    }
}

/// Regenerates Table 2 for the given bugs.
pub fn table2(bugs: impl IntoIterator<Item = BugId>, max_transitions: u64) -> Vec<Table2Row> {
    bugs.into_iter()
        .map(|bug| Table2Row {
            bug,
            outcomes: StrategyKind::ALL
                .iter()
                .map(|&s| (s, hunt_bug(bug, s, max_transitions)))
                .collect(),
        })
        .collect()
}

/// One row of the design-choice ablation.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// The configuration label.
    pub label: String,
    /// Search statistics under that configuration.
    pub stats: SearchStats,
}

/// Regenerates the ablation rows for a given ping count: the canonical flow
/// table, the coarse `process_pkt` transition, and replay-based state
/// storage are each toggled independently.
pub fn ablation(pings: u32, max_transitions: u64) -> Vec<AblationRow> {
    let base = CheckerConfig::default().with_max_transitions(max_transitions);
    vec![
        AblationRow {
            label: "baseline (canonical tables, coarse process_pkt, full-state storage)".into(),
            stats: exhaustive(ping_workload(pings, true), base.clone()),
        },
        AblationRow {
            label: "no canonical flow table (NO-SWITCH-REDUCTION)".into(),
            stats: exhaustive(ping_workload(pings, false), base.clone()),
        },
        AblationRow {
            label: "fine-grained packet processing (one port per transition)".into(),
            stats: exhaustive(
                ping_workload(pings, true),
                CheckerConfig {
                    coarse_packet_processing: false,
                    ..base.clone()
                },
            ),
        },
        AblationRow {
            label: "replay-based state storage (trade CPU for memory)".into(),
            stats: exhaustive(
                ping_workload(pings, true),
                base.with_state_storage(StateStorage::Replay),
            ),
        },
    ]
}

/// Renders search statistics as a compact table cell.
pub fn stats_cell(stats: &SearchStats) -> String {
    format!(
        "{} transitions, {} states, {:.2}s{}",
        stats.transitions,
        stats.unique_states,
        stats.duration.as_secs_f64(),
        if stats.truncated { " (truncated)" } else { "" }
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ping_workload_shape() {
        let s = ping_workload(2, true);
        assert_eq!(s.hosts.len(), 2);
        assert!(s.switch_config.canonical_flow_table);
        assert!(!ping_workload(2, false).switch_config.canonical_flow_table);
    }

    #[test]
    fn chain_fault_workload_is_dormant_without_injection() {
        let plain = exhaustive(chain_ping_workload(2, 1), CheckerConfig::default());
        let dormant = exhaustive(chain_fault_workload(2, 1), CheckerConfig::default());
        assert_eq!(plain.transitions, dormant.transitions);
        assert_eq!(plain.unique_states, dormant.unique_states);
        // With injection on, the crash/recovery interleavings enlarge the
        // state space.
        let faulty = exhaustive(
            chain_fault_workload(2, 1),
            CheckerConfig::default().with_fault_injection(true),
        );
        assert!(faulty.transitions > plain.transitions);
        assert!(faulty.faults.any(), "faults were injected and counted");
    }

    #[test]
    fn table1_rho_is_positive_for_two_pings() {
        let rows = table1([2], 0);
        assert_eq!(rows.len(), 1);
        let row = &rows[0];
        assert!(row.nice.transitions > 0);
        assert!(
            row.no_reduction.unique_states >= row.nice.unique_states,
            "canonicalisation must not increase the state count"
        );
        assert!(row.rho() >= 0.0);
    }

    #[test]
    fn figure6_strategies_reduce_transitions() {
        let rows = figure6([2], 0);
        let row = &rows[0];
        assert!(row.no_delay.transitions <= row.full.transitions);
        assert!(row.flow_ir.transitions <= row.full.transitions);
        assert!(row.transition_reduction(&row.no_delay) >= 0.0);
    }

    #[test]
    fn comparison_generic_baseline_explores_more() {
        let rows = comparison([2], 0);
        let row = &rows[0];
        assert!(row.generic.transitions >= row.nice.transitions);
        assert!(row.transition_ratio() >= 1.0);
    }

    #[test]
    fn hunt_bug_finds_and_formats() {
        let outcome = hunt_bug(BugId::BugVIII, StrategyKind::FullDfs, 100_000);
        assert!(outcome.found());
        assert!(outcome.cell().contains('/'));
        let missed = BugHuntOutcome::Missed {
            transitions: 5,
            time: Duration::from_millis(1),
        };
        assert_eq!(missed.cell(), "Missed");
    }

    #[test]
    fn ablation_has_four_rows() {
        let rows = ablation(2, 0);
        assert_eq!(rows.len(), 4);
        assert!(rows.iter().all(|r| r.stats.transitions > 0));
        assert!(stats_cell(&rows[0].stats).contains("transitions"));
    }
}
