//! Criterion bench for the Section 7 comparison: NICE vs a generic model
//! checker baseline (no canonical flow tables, per-port packet transitions)
//! on the 2-ping workload.

use criterion::{criterion_group, criterion_main, Criterion};
use nice_bench::{exhaustive, ping_workload};
use nice_mc::CheckerConfig;

fn bench_comparison(c: &mut Criterion) {
    let mut group = c.benchmark_group("generic_baseline");
    group.sample_size(10);
    group.bench_function("nice_2_pings", |b| {
        b.iter(|| exhaustive(ping_workload(2, true), CheckerConfig::default()))
    });
    group.bench_function("generic_2_pings", |b| {
        b.iter(|| exhaustive(ping_workload(2, false), CheckerConfig::generic_baseline()))
    });
    group.finish();
}

criterion_group!(benches, bench_comparison);
criterion_main!(benches);
