//! Criterion bench for the design-choice ablation: full-state vs replay
//! state storage and coarse vs fine packet processing.

use criterion::{criterion_group, criterion_main, Criterion};
use nice_bench::{exhaustive, ping_workload};
use nice_mc::{CheckerConfig, StateStorage};

fn bench_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation");
    group.sample_size(10);
    group.bench_function("full_state_storage", |b| {
        b.iter(|| exhaustive(ping_workload(2, true), CheckerConfig::default()))
    });
    group.bench_function("replay_state_storage", |b| {
        b.iter(|| {
            exhaustive(
                ping_workload(2, true),
                CheckerConfig::default().with_state_storage(StateStorage::Replay),
            )
        })
    });
    group.bench_function("fine_grained_packet_processing", |b| {
        b.iter(|| {
            exhaustive(
                ping_workload(2, true),
                CheckerConfig {
                    coarse_packet_processing: false,
                    ..CheckerConfig::default()
                },
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
