//! Criterion bench for Table 1: exhaustive search with and without the
//! canonical (simplified) switch model, on the 2- and 3-ping workloads.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nice_bench::{exhaustive, ping_workload};
use nice_mc::CheckerConfig;

fn bench_table1(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_switch_reduction");
    group.sample_size(10);
    for pings in [2u32, 3] {
        group.bench_with_input(BenchmarkId::new("nice_mc", pings), &pings, |b, &n| {
            b.iter(|| exhaustive(ping_workload(n, true), CheckerConfig::default()))
        });
        group.bench_with_input(
            BenchmarkId::new("no_switch_reduction", pings),
            &pings,
            |b, &n| b.iter(|| exhaustive(ping_workload(n, false), CheckerConfig::default())),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
