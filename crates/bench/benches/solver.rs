//! Criterion bench for the concolic machinery on its own: solving packet
//! path constraints and exploring the pyswitch `packet_in` handler.

use criterion::{criterion_group, criterion_main, Criterion};
use nice_apps::pyswitch::{PySwitchApp, PySwitchVariant};
use nice_controller::{ControllerRuntime, PacketInContext};
use nice_openflow::{BufferId, PacketInReason, PortId, SwitchId, Topology};
use nice_sym::{PacketDomains, PathExplorer, Solver, SymPacket};

fn bench_symbolic_discovery(c: &mut Criterion) {
    let topology = Topology::linear_two_switches();
    let domains = PacketDomains::from_topology(&topology);

    c.bench_function("discover_pyswitch_packet_classes", |b| {
        b.iter(|| {
            let mut solver = Solver::new();
            let (sym_packet, vars) = SymPacket::symbolic(&mut solver, &domains);
            let runtime =
                ControllerRuntime::new(Box::new(PySwitchApp::new(PySwitchVariant::Original)));
            let ctx = PacketInContext {
                switch: SwitchId(1),
                in_port: PortId(1),
                buffer_id: BufferId(0),
                reason: PacketInReason::NoMatch,
            };
            let explorer = PathExplorer::default();
            let outcome = explorer.explore(&mut solver, |env| {
                let mut clone = runtime.clone();
                let _ = clone.run_packet_in_symbolic(env, ctx, &sym_packet);
            });
            let packets: Vec<_> = outcome
                .paths
                .iter()
                .map(|p| vars.packet_from(&p.assignment, 0))
                .collect();
            packets
        })
    });
}

criterion_group!(benches, bench_symbolic_discovery);
criterion_main!(benches);
