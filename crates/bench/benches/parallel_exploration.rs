//! Criterion bench for the exploration-engine optimisations, on the
//! pyswitch FullDfs chain-ping workload and the load-balancer scenario:
//!
//! * `sequential_seed` — one worker, frontier states deep-cloned eagerly and
//!   every fingerprint recomputed from scratch: the cost profile of the
//!   engine before copy-on-write states landed,
//! * `cow_snapshot` — one worker with copy-on-write snapshots and cached
//!   component digests (the default engine),
//! * `checkpoint_replay` — one worker, checkpointed replay storage
//!   (snapshot every 8 transitions, replay the suffix), and
//! * `parallel_4` — four workers over the shared work-sharing frontier.
//!
//! The acceptance target for this work was ≥ 2x states/sec for `parallel_4`
//! over `sequential_seed` on the pyswitch scenario.
//! `cargo run --release -p nice-bench --bin parallel` prints states/sec and
//! speedups directly.

use criterion::{criterion_group, criterion_main, Criterion};
use nice_bench::{chain_ping_workload, exhaustive, load_balancer_workload};
use nice_mc::{CheckerConfig, Scenario};

const CHAIN_SWITCHES: u32 = 5;
const PINGS: u32 = 2;

fn bench_engines(c: &mut Criterion, group_name: &str, scenario: impl Fn() -> Scenario) {
    let mut group = c.benchmark_group(group_name);
    group.sample_size(10);
    group.bench_function("sequential_seed", |b| {
        b.iter(|| {
            exhaustive(
                scenario(),
                CheckerConfig {
                    force_deep_clone: true,
                    ..CheckerConfig::default()
                },
            )
        })
    });
    group.bench_function("cow_snapshot", |b| {
        b.iter(|| exhaustive(scenario(), CheckerConfig::default()))
    });
    group.bench_function("checkpoint_replay", |b| {
        b.iter(|| {
            exhaustive(
                scenario(),
                CheckerConfig::default().with_checkpoint_interval(8),
            )
        })
    });
    group.bench_function("parallel_4", |b| {
        b.iter(|| exhaustive(scenario(), CheckerConfig::default().with_workers(4)))
    });
    group.finish();
}

fn bench_parallel_exploration(c: &mut Criterion) {
    bench_engines(c, "parallel_exploration/pyswitch_chain", || {
        chain_ping_workload(CHAIN_SWITCHES, PINGS)
    });
    bench_engines(
        c,
        "parallel_exploration/load_balancer",
        load_balancer_workload,
    );
}

criterion_group!(benches, bench_parallel_exploration);
criterion_main!(benches);
