//! Criterion bench for Table 2: time to the first violation for a
//! representative bug of each application, under the full search and the
//! UNUSUAL strategy.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nice_apps::scenarios::BugId;
use nice_bench::hunt_bug;
use nice_mc::StrategyKind;

fn bench_bug_hunts(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2_bugs");
    group.sample_size(10);
    for bug in [BugId::BugII, BugId::BugIV, BugId::BugVIII] {
        for strategy in [StrategyKind::FullDfs, StrategyKind::Unusual] {
            let id = format!("bug_{}_{}", bug.label(), strategy.name());
            group.bench_with_input(BenchmarkId::new(id, 0), &bug, |b, &bug| {
                b.iter(|| hunt_bug(bug, strategy, 200_000))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_bug_hunts);
criterion_main!(benches);
