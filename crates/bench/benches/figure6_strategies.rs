//! Criterion bench for Figure 6: the full search vs the NO-DELAY, FLOW-IR
//! and UNUSUAL heuristic strategies on the 3-ping workload.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nice_bench::{exhaustive, ping_workload};
use nice_mc::{CheckerConfig, StrategyKind};

fn bench_strategies(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure6_strategies");
    group.sample_size(10);
    let pings = 3u32;
    for strategy in StrategyKind::ALL {
        group.bench_with_input(BenchmarkId::new(strategy.name(), pings), &pings, |b, &n| {
            b.iter(|| {
                exhaustive(
                    ping_workload(n, true),
                    CheckerConfig::default().with_strategy(strategy),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_strategies);
criterion_main!(benches);
