//! Actions attached to flow rules and `packet_out` messages, and the
//! forwarding decisions produced when a switch applies them.

use crate::fingerprint::{Fingerprint, Fnv64};
use crate::packet::Packet;
use crate::types::PortId;
use std::fmt;

/// An OpenFlow action.
///
/// Only the actions used by the paper's applications are modelled; adding
/// more (header rewriting, enqueue, ...) only requires extending this enum
/// and [`crate::switch::Switch::apply_actions`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Action {
    /// Forward the packet out of the given port.
    Output(PortId),
    /// Forward the packet out of every port except the one it arrived on.
    Flood,
    /// Drop the packet.
    Drop,
    /// Send the packet to the controller as a `packet_in` message.
    ToController,
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Action::Output(p) => write!(f, "output:{}", p),
            Action::Flood => write!(f, "flood"),
            Action::Drop => write!(f, "drop"),
            Action::ToController => write!(f, "controller"),
        }
    }
}

impl Fingerprint for Action {
    fn fingerprint(&self, hasher: &mut Fnv64) {
        match self {
            Action::Output(p) => {
                hasher.write_u8(0);
                p.fingerprint(hasher);
            }
            Action::Flood => hasher.write_u8(1),
            Action::Drop => hasher.write_u8(2),
            Action::ToController => hasher.write_u8(3),
        }
    }
}

/// The outcome of a switch processing one packet: where copies of the packet
/// must now be delivered. The model checker turns these into channel
/// enqueue operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ForwardingDecision {
    /// Deliver `packet` out of local port `port`.
    Forward {
        /// Output port.
        port: PortId,
        /// The packet copy to deliver.
        packet: Packet,
    },
    /// Deliver a copy of `packet` out of every port except `in_port`.
    FloodExcept {
        /// The port the packet arrived on (no copy is sent back out of it).
        in_port: PortId,
        /// The packet to copy.
        packet: Packet,
    },
    /// The packet was handed to the controller as a `packet_in`; it now sits
    /// in the switch buffer under `buffer_id`.
    SentToController {
        /// Buffer slot holding the packet at the switch.
        buffer_id: crate::switch::BufferId,
        /// The buffered packet.
        packet: Packet,
        /// Why the packet went to the controller.
        reason: crate::messages::PacketInReason,
    },
    /// The packet was dropped (explicit drop rule or empty action list).
    Dropped {
        /// The dropped packet.
        packet: Packet,
    },
}

impl ForwardingDecision {
    /// The packet this decision concerns.
    pub fn packet(&self) -> &Packet {
        match self {
            ForwardingDecision::Forward { packet, .. }
            | ForwardingDecision::FloodExcept { packet, .. }
            | ForwardingDecision::SentToController { packet, .. }
            | ForwardingDecision::Dropped { packet } => packet,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fingerprint::fingerprint_of;
    use crate::types::MacAddr;

    #[test]
    fn display_forms() {
        assert_eq!(Action::Output(PortId(3)).to_string(), "output:p3");
        assert_eq!(Action::Flood.to_string(), "flood");
        assert_eq!(Action::Drop.to_string(), "drop");
        assert_eq!(Action::ToController.to_string(), "controller");
    }

    #[test]
    fn fingerprints_distinguish_variants() {
        let variants = [
            Action::Output(PortId(1)),
            Action::Output(PortId(2)),
            Action::Flood,
            Action::Drop,
            Action::ToController,
        ];
        for (i, a) in variants.iter().enumerate() {
            for (j, b) in variants.iter().enumerate() {
                if i != j {
                    assert_ne!(fingerprint_of(a), fingerprint_of(b), "{a} vs {b}");
                }
            }
        }
    }

    #[test]
    fn decision_packet_accessor() {
        let pkt = Packet::l2_ping(1, MacAddr::for_host(1), MacAddr::for_host(2), 0);
        let d = ForwardingDecision::Forward {
            port: PortId(1),
            packet: pkt,
        };
        assert_eq!(d.packet().id, pkt.id);
        let d = ForwardingDecision::Dropped { packet: pkt };
        assert_eq!(d.packet().id, pkt.id);
    }
}
