//! Traffic statistics reported by switches.
//!
//! The energy-efficient traffic-engineering application of Section 8.3 learns
//! link utilisation by querying switches for port statistics; the statistics
//! handler is also a symbolic-execution target (`discover_stats` in Figure 5),
//! so the values carried here are plain integers that can be marked symbolic
//! by the `nice-sym` crate.

use crate::fingerprint::{Fingerprint, Fnv64};
use crate::types::PortId;

/// Per-port transmit/receive counters, the payload of a port-stats reply.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PortStatsEntry {
    /// Port the counters belong to.
    pub port: PortId,
    /// Packets received on the port.
    pub rx_packets: u64,
    /// Packets transmitted out of the port.
    pub tx_packets: u64,
    /// Bytes received on the port.
    pub rx_bytes: u64,
    /// Bytes transmitted out of the port.
    pub tx_bytes: u64,
}

impl Default for PortStatsEntry {
    fn default() -> Self {
        Self::zero(PortId(0))
    }
}

impl PortStatsEntry {
    /// Creates an entry with all counters zero.
    pub fn zero(port: PortId) -> Self {
        PortStatsEntry {
            port,
            rx_packets: 0,
            tx_packets: 0,
            rx_bytes: 0,
            tx_bytes: 0,
        }
    }

    /// Total bytes in either direction, the quantity the TE application uses
    /// as its utilisation signal.
    pub fn total_bytes(&self) -> u64 {
        self.rx_bytes + self.tx_bytes
    }
}

/// Per-rule counters, the payload of a flow-stats reply.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct FlowStatsEntry {
    /// Index of the rule in the canonical flow-table order.
    pub rule_index: usize,
    /// Packets that matched the rule.
    pub packets: u64,
    /// Bytes that matched the rule.
    pub bytes: u64,
}

impl Fingerprint for PortStatsEntry {
    fn fingerprint(&self, hasher: &mut Fnv64) {
        self.port.fingerprint(hasher);
        hasher.write_u64(self.rx_packets);
        hasher.write_u64(self.tx_packets);
        hasher.write_u64(self.rx_bytes);
        hasher.write_u64(self.tx_bytes);
    }
}

impl Fingerprint for FlowStatsEntry {
    fn fingerprint(&self, hasher: &mut Fnv64) {
        hasher.write_usize(self.rule_index);
        hasher.write_u64(self.packets);
        hasher.write_u64(self.bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fingerprint::fingerprint_of;

    #[test]
    fn zero_entry_has_no_traffic() {
        let e = PortStatsEntry::zero(PortId(1));
        assert_eq!(e.total_bytes(), 0);
        assert_eq!(e.port, PortId(1));
    }

    #[test]
    fn total_bytes_sums_both_directions() {
        let e = PortStatsEntry {
            port: PortId(1),
            rx_bytes: 10,
            tx_bytes: 32,
            ..Default::default()
        };
        assert_eq!(e.total_bytes(), 42);
    }

    #[test]
    fn fingerprints_differ_by_counters() {
        let a = PortStatsEntry::zero(PortId(1));
        let mut b = a;
        b.rx_packets = 1;
        assert_ne!(fingerprint_of(&a), fingerprint_of(&b));
        let fa = FlowStatsEntry {
            rule_index: 0,
            packets: 1,
            bytes: 64,
        };
        let fb = FlowStatsEntry {
            rule_index: 0,
            packets: 2,
            bytes: 128,
        };
        assert_ne!(fingerprint_of(&fa), fingerprint_of(&fb));
    }
}
