//! # nice-openflow
//!
//! The OpenFlow substrate used by the NICE model checker: concrete packets,
//! match patterns, actions, flow tables with a canonical representation,
//! OpenFlow protocol messages, the *simplified switch model* described in
//! Section 2.2.2 of the paper, FIFO communication channels with an optional
//! fault model, and network topology descriptions.
//!
//! Everything in this crate is deterministic and self-contained: no clocks,
//! no randomness, no I/O. All collections iterate in a stable order so that
//! state fingerprints are reproducible.
//!
//! The crate is intentionally much simpler than a production OpenFlow agent
//! (such as Open vSwitch): the paper argues that modelling the reference
//! switch implementation explodes the state space, and instead specifies a
//! switch as a set of FIFO channels, two transitions (`process_pkt` and
//! `process_of`), and a flow table whose semantically-equivalent states are
//! merged through a canonical representation. That is exactly the model
//! implemented here.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod action;
pub mod channel;
pub mod fingerprint;
pub mod flowtable;
pub mod matchfields;
pub mod messages;
pub mod packet;
pub mod stats;
pub mod switch;
pub mod topology;
pub mod types;

pub use action::{Action, ForwardingDecision};
pub use channel::{ChannelFault, FaultModel, FifoChannel};
pub use fingerprint::{fingerprint_of, Fingerprint, Fnv64};
pub use flowtable::{FlowRule, FlowTable, RuleCounters, Timeouts};
pub use matchfields::MatchPattern;
pub use messages::{FlowModCommand, OfMessage, OfMutation, PacketInReason, StatsKind};
pub use packet::{EthType, IpProto, Packet, PacketId, TcpFlags};
pub use stats::{FlowStatsEntry, PortStatsEntry};
pub use switch::{BufferId, BufferedPacket, PacketFate, Switch, SwitchConfig, SwitchOutput};
pub use topology::{Endpoint, HostSpec, LinkSpec, Location, SwitchSpec, Topology, TopologyBuilder};
pub use types::{HostId, MacAddr, NwAddr, PortId, SwitchId, FLOOD_PORT, OFPP_CONTROLLER};
