//! First-in first-out communication channels with an optional fault model.
//!
//! Section 2.2.1 of the paper models a distributed system as components that
//! communicate over FIFO message channels; Section 2.2.2 adds that *packet*
//! channels have an optionally-enabled fault model that can drop, duplicate
//! or reorder packets, or fail the link, while the OpenFlow channel between a
//! switch and the controller is reliable and in-order.
//!
//! The channel itself does not decide *when* faults happen — it only reports
//! which faulty transitions are currently enabled; the model checker chooses
//! among them like any other transition, so every fault interleaving is
//! explored systematically rather than sampled.

use crate::fingerprint::{Fingerprint, Fnv64};
use std::collections::VecDeque;
use std::fmt;

/// Which fault classes are enabled on a channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultModel {
    /// Messages may be silently dropped.
    pub allow_drop: bool,
    /// Messages may be duplicated.
    pub allow_duplicate: bool,
    /// Adjacent messages may be reordered.
    pub allow_reorder: bool,
    /// The link itself may fail (the channel stops delivering).
    pub allow_link_failure: bool,
}

impl FaultModel {
    /// The reliable, in-order model used for the OpenFlow control channel and
    /// (by default, Section 5.2 "we disable optional packet drops and
    /// duplication") for packet channels too.
    pub const RELIABLE: FaultModel = FaultModel {
        allow_drop: false,
        allow_duplicate: false,
        allow_reorder: false,
        allow_link_failure: false,
    };

    /// A lossy model enabling every fault class.
    pub const LOSSY: FaultModel = FaultModel {
        allow_drop: true,
        allow_duplicate: true,
        allow_reorder: true,
        allow_link_failure: true,
    };

    /// True if at least one fault class is enabled.
    pub fn any_enabled(&self) -> bool {
        self.allow_drop || self.allow_duplicate || self.allow_reorder || self.allow_link_failure
    }
}

/// A fault transition that is currently possible on a channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChannelFault {
    /// Drop the message at the head of the queue.
    DropHead,
    /// Duplicate the message at the head of the queue.
    DuplicateHead,
    /// Swap the first two messages.
    ReorderHead,
    /// Fail the link: all queued and future messages are discarded.
    FailLink,
}

/// A FIFO channel carrying messages of type `T`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FifoChannel<T> {
    queue: VecDeque<T>,
    faults: FaultModel,
    failed: bool,
}

impl<T> Default for FifoChannel<T> {
    fn default() -> Self {
        Self::reliable()
    }
}

impl<T> FifoChannel<T> {
    /// Creates an empty, reliable channel.
    pub fn reliable() -> Self {
        FifoChannel {
            queue: VecDeque::new(),
            faults: FaultModel::RELIABLE,
            failed: false,
        }
    }

    /// Creates an empty channel with the given fault model.
    pub fn with_faults(faults: FaultModel) -> Self {
        FifoChannel {
            queue: VecDeque::new(),
            faults,
            failed: false,
        }
    }

    /// The configured fault model.
    pub fn fault_model(&self) -> FaultModel {
        self.faults
    }

    /// True if the link has failed.
    pub fn is_failed(&self) -> bool {
        self.failed
    }

    /// Number of queued messages.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// True if no messages are queued.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Enqueues a message. Messages sent on a failed link are discarded,
    /// mirroring a down physical link.
    pub fn push(&mut self, msg: T) {
        if !self.failed {
            self.queue.push_back(msg);
        }
    }

    /// Dequeues the message at the head of the queue.
    pub fn pop(&mut self) -> Option<T> {
        self.queue.pop_front()
    }

    /// Peeks at the head of the queue.
    pub fn peek(&self) -> Option<&T> {
        self.queue.front()
    }

    /// Mutable access to the head of the queue (used by the Byzantine
    /// message mutator to corrupt a message in flight).
    pub fn peek_mut(&mut self) -> Option<&mut T> {
        self.queue.front_mut()
    }

    /// Iterates over queued messages from head to tail.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.queue.iter()
    }

    /// Fails the link from outside the channel's own fault model: queued
    /// messages are discarded and future pushes are dropped until
    /// [`FifoChannel::restore`]. Models the connection to a crashed
    /// component (a crashed switch's control channel), which is why —
    /// unlike [`ChannelFault::FailLink`] — it does not require
    /// `allow_link_failure`.
    pub fn fail(&mut self) {
        self.failed = true;
        self.queue.clear();
    }

    /// Restores a failed link: the channel is empty and accepts messages
    /// again (messages sent while the link was down stay lost).
    pub fn restore(&mut self) {
        self.failed = false;
    }

    /// Lists the fault transitions currently enabled, given the fault model
    /// and queue contents. The model checker schedules these alongside the
    /// ordinary deliver transitions.
    pub fn enabled_faults(&self) -> Vec<ChannelFault> {
        let mut out = Vec::new();
        if self.failed {
            return out;
        }
        if self.faults.allow_drop && !self.queue.is_empty() {
            out.push(ChannelFault::DropHead);
        }
        if self.faults.allow_duplicate && !self.queue.is_empty() {
            out.push(ChannelFault::DuplicateHead);
        }
        if self.faults.allow_reorder && self.queue.len() >= 2 {
            out.push(ChannelFault::ReorderHead);
        }
        if self.faults.allow_link_failure {
            out.push(ChannelFault::FailLink);
        }
        out
    }

    /// Applies a fault transition. Panics if the fault is not currently
    /// enabled — the model checker only applies faults it obtained from
    /// [`FifoChannel::enabled_faults`].
    pub fn apply_fault(&mut self, fault: ChannelFault)
    where
        T: Clone,
    {
        match fault {
            ChannelFault::DropHead => {
                assert!(self.faults.allow_drop, "drop fault not enabled");
                self.queue.pop_front();
            }
            ChannelFault::DuplicateHead => {
                assert!(self.faults.allow_duplicate, "duplicate fault not enabled");
                if let Some(head) = self.queue.front().cloned() {
                    self.queue.push_front(head);
                }
            }
            ChannelFault::ReorderHead => {
                assert!(self.faults.allow_reorder, "reorder fault not enabled");
                if self.queue.len() >= 2 {
                    self.queue.swap(0, 1);
                }
            }
            ChannelFault::FailLink => {
                assert!(self.faults.allow_link_failure, "link failure not enabled");
                self.failed = true;
                self.queue.clear();
            }
        }
    }
}

impl<T: Fingerprint> Fingerprint for FifoChannel<T> {
    fn fingerprint(&self, hasher: &mut Fnv64) {
        hasher.write_bool(self.failed);
        hasher.write_usize(self.queue.len());
        for m in &self.queue {
            m.fingerprint(hasher);
        }
    }
}

impl<T: fmt::Display> fmt::Display for FifoChannel<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.failed {
            return write!(f, "<failed link>");
        }
        write!(f, "[{} queued]", self.queue.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fingerprint::fingerprint_of;

    #[test]
    fn fifo_ordering() {
        let mut ch: FifoChannel<u32> = FifoChannel::reliable();
        assert!(ch.is_empty());
        ch.push(1);
        ch.push(2);
        ch.push(3);
        assert_eq!(ch.len(), 3);
        assert_eq!(ch.peek(), Some(&1));
        assert_eq!(ch.pop(), Some(1));
        assert_eq!(ch.pop(), Some(2));
        assert_eq!(ch.pop(), Some(3));
        assert_eq!(ch.pop(), None);
    }

    #[test]
    fn reliable_channel_has_no_fault_transitions() {
        let mut ch: FifoChannel<u32> = FifoChannel::reliable();
        ch.push(1);
        ch.push(2);
        assert!(ch.enabled_faults().is_empty());
        assert!(!ch.fault_model().any_enabled());
    }

    #[test]
    fn lossy_channel_exposes_faults_dependent_on_queue() {
        let mut ch: FifoChannel<u32> = FifoChannel::with_faults(FaultModel::LOSSY);
        // Empty queue: only link failure is possible.
        assert_eq!(ch.enabled_faults(), vec![ChannelFault::FailLink]);
        ch.push(1);
        let faults = ch.enabled_faults();
        assert!(faults.contains(&ChannelFault::DropHead));
        assert!(faults.contains(&ChannelFault::DuplicateHead));
        assert!(!faults.contains(&ChannelFault::ReorderHead));
        ch.push(2);
        assert!(ch.enabled_faults().contains(&ChannelFault::ReorderHead));
    }

    #[test]
    fn drop_duplicate_reorder_semantics() {
        let mut ch: FifoChannel<u32> = FifoChannel::with_faults(FaultModel::LOSSY);
        ch.push(1);
        ch.push(2);
        ch.apply_fault(ChannelFault::ReorderHead);
        assert_eq!(ch.iter().copied().collect::<Vec<_>>(), vec![2, 1]);
        ch.apply_fault(ChannelFault::DuplicateHead);
        assert_eq!(ch.iter().copied().collect::<Vec<_>>(), vec![2, 2, 1]);
        ch.apply_fault(ChannelFault::DropHead);
        assert_eq!(ch.iter().copied().collect::<Vec<_>>(), vec![2, 1]);
    }

    #[test]
    fn link_failure_discards_everything() {
        let mut ch: FifoChannel<u32> = FifoChannel::with_faults(FaultModel::LOSSY);
        ch.push(1);
        ch.apply_fault(ChannelFault::FailLink);
        assert!(ch.is_failed());
        assert!(ch.is_empty());
        ch.push(7);
        assert!(
            ch.is_empty(),
            "a failed link silently discards new messages"
        );
        assert!(ch.enabled_faults().is_empty());
    }

    #[test]
    fn external_fail_and_restore() {
        let mut ch: FifoChannel<u32> = FifoChannel::reliable();
        ch.push(1);
        ch.fail();
        assert!(ch.is_failed());
        assert!(ch.is_empty());
        ch.push(2);
        assert!(ch.is_empty(), "pushes while failed are discarded");
        ch.restore();
        assert!(!ch.is_failed());
        ch.push(3);
        assert_eq!(ch.pop(), Some(3));
    }

    #[test]
    #[should_panic(expected = "drop fault not enabled")]
    fn applying_disabled_fault_panics() {
        let mut ch: FifoChannel<u32> = FifoChannel::reliable();
        ch.push(1);
        ch.apply_fault(ChannelFault::DropHead);
    }

    #[test]
    fn fingerprint_covers_contents_and_failure() {
        let mut a: FifoChannel<u32> = FifoChannel::reliable();
        let mut b: FifoChannel<u32> = FifoChannel::reliable();
        a.push(1);
        b.push(2);
        assert_ne!(fingerprint_of(&a), fingerprint_of(&b));
        let mut c: FifoChannel<u32> = FifoChannel::with_faults(FaultModel::LOSSY);
        c.push(1);
        let before = fingerprint_of(&c);
        c.apply_fault(ChannelFault::FailLink);
        assert_ne!(before, fingerprint_of(&c));
    }
}
