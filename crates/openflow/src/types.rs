//! Fundamental identifier and address types shared by the whole system model.

use crate::fingerprint::{Fingerprint, Fnv64};
use std::fmt;

/// Identifier of an OpenFlow switch (datapath id).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SwitchId(pub u32);

/// Identifier of an end host in the modelled topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct HostId(pub u32);

/// A switch port number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PortId(pub u16);

/// The pseudo output port meaning "flood out of every port except the input
/// port" (OFPP_FLOOD in the OpenFlow specification).
pub const FLOOD_PORT: PortId = PortId(0xfffb);

/// The pseudo output port meaning "send to the controller"
/// (OFPP_CONTROLLER in the OpenFlow specification).
pub const OFPP_CONTROLLER: PortId = PortId(0xfffd);

/// A 48-bit Ethernet MAC address stored in the low bits of a `u64`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MacAddr(pub u64);

/// A 32-bit IPv4 network address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NwAddr(pub u32);

impl SwitchId {
    /// Returns the numeric value of the datapath id.
    pub fn value(self) -> u32 {
        self.0
    }
}

impl HostId {
    /// Returns the numeric value of the host id.
    pub fn value(self) -> u32 {
        self.0
    }
}

impl PortId {
    /// Returns the numeric port number.
    pub fn value(self) -> u16 {
        self.0
    }
}

impl MacAddr {
    /// The Ethernet broadcast address `ff:ff:ff:ff:ff:ff`.
    pub const BROADCAST: MacAddr = MacAddr(0xffff_ffff_ffff);

    /// Builds a MAC address from six octets.
    pub fn from_octets(o: [u8; 6]) -> Self {
        let mut v: u64 = 0;
        for b in o {
            v = (v << 8) | b as u64;
        }
        MacAddr(v)
    }

    /// Returns the six octets of the address, most significant first.
    pub fn octets(self) -> [u8; 6] {
        let v = self.0;
        [
            ((v >> 40) & 0xff) as u8,
            ((v >> 32) & 0xff) as u8,
            ((v >> 24) & 0xff) as u8,
            ((v >> 16) & 0xff) as u8,
            ((v >> 8) & 0xff) as u8,
            (v & 0xff) as u8,
        ]
    }

    /// Returns the first (most significant) octet; the pyswitch pseudo-code
    /// tests `pkt.src[0] & 1` to detect group (broadcast/multicast)
    /// addresses.
    pub fn first_octet(self) -> u8 {
        self.octets()[0]
    }

    /// True if the group bit (least-significant bit of the first octet) is
    /// set, i.e. the address is a broadcast or multicast address.
    pub fn is_group(self) -> bool {
        self.first_octet() & 1 == 1
    }

    /// True if this is exactly the all-ones broadcast address.
    pub fn is_broadcast(self) -> bool {
        self == Self::BROADCAST
    }

    /// A compact deterministic MAC for the `n`-th modelled host:
    /// `02:00:00:00:00:<n>` (locally administered, unicast).
    pub fn for_host(n: u32) -> Self {
        MacAddr(0x0200_0000_0000 | n as u64)
    }

    /// Returns the raw 48-bit value.
    pub fn value(self) -> u64 {
        self.0
    }
}

impl NwAddr {
    /// Builds an address from dotted-quad octets.
    pub fn from_octets(a: u8, b: u8, c: u8, d: u8) -> Self {
        NwAddr(u32::from_be_bytes([a, b, c, d]))
    }

    /// A deterministic address for the `n`-th modelled host: `10.0.0.<n>`.
    pub fn for_host(n: u32) -> Self {
        NwAddr(0x0a00_0000 | (n & 0xff))
    }

    /// Returns the raw 32-bit value.
    pub fn value(self) -> u32 {
        self.0
    }

    /// True if `self` falls inside the prefix `prefix/len`.
    pub fn in_prefix(self, prefix: NwAddr, len: u8) -> bool {
        if len == 0 {
            return true;
        }
        if len >= 32 {
            return self == prefix;
        }
        let mask = u32::MAX << (32 - len);
        (self.0 & mask) == (prefix.0 & mask)
    }
}

impl fmt::Display for SwitchId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

impl fmt::Display for HostId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "h{}", self.0)
    }
}

impl fmt::Display for PortId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == FLOOD_PORT {
            write!(f, "FLOOD")
        } else if *self == OFPP_CONTROLLER {
            write!(f, "CONTROLLER")
        } else {
            write!(f, "p{}", self.0)
        }
    }
}

impl fmt::Display for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let o = self.octets();
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            o[0], o[1], o[2], o[3], o[4], o[5]
        )
    }
}

impl fmt::Display for NwAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0.to_be_bytes();
        write!(f, "{}.{}.{}.{}", b[0], b[1], b[2], b[3])
    }
}

macro_rules! impl_fingerprint_newtype {
    ($ty:ty, $write:ident) => {
        impl Fingerprint for $ty {
            fn fingerprint(&self, hasher: &mut Fnv64) {
                hasher.$write(self.0);
            }
        }
    };
}

impl_fingerprint_newtype!(SwitchId, write_u32);
impl_fingerprint_newtype!(HostId, write_u32);
impl_fingerprint_newtype!(PortId, write_u16);
impl_fingerprint_newtype!(MacAddr, write_u64);
impl_fingerprint_newtype!(NwAddr, write_u32);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mac_octet_roundtrip() {
        let mac = MacAddr::from_octets([0x02, 0x11, 0x22, 0x33, 0x44, 0x55]);
        assert_eq!(mac.octets(), [0x02, 0x11, 0x22, 0x33, 0x44, 0x55]);
        assert_eq!(mac.first_octet(), 0x02);
        assert!(!mac.is_group());
    }

    #[test]
    fn broadcast_is_group() {
        assert!(MacAddr::BROADCAST.is_group());
        assert!(MacAddr::BROADCAST.is_broadcast());
        assert_eq!(MacAddr::BROADCAST.first_octet(), 0xff);
    }

    #[test]
    fn host_mac_is_unicast_and_unique() {
        let a = MacAddr::for_host(1);
        let b = MacAddr::for_host(2);
        assert_ne!(a, b);
        assert!(!a.is_group());
        assert!(!b.is_group());
    }

    #[test]
    fn nw_addr_display_and_prefix() {
        let a = NwAddr::from_octets(10, 0, 0, 7);
        assert_eq!(a.to_string(), "10.0.0.7");
        assert!(a.in_prefix(NwAddr::from_octets(10, 0, 0, 0), 24));
        assert!(a.in_prefix(NwAddr::from_octets(10, 0, 0, 0), 8));
        assert!(!a.in_prefix(NwAddr::from_octets(192, 168, 0, 0), 16));
        assert!(a.in_prefix(NwAddr::from_octets(0, 0, 0, 0), 0));
        assert!(a.in_prefix(a, 32));
        assert!(!NwAddr::from_octets(10, 0, 0, 8).in_prefix(a, 32));
    }

    #[test]
    fn prefix_halves_split_address_space() {
        // The load balancer splits clients on the top bit of the address.
        let low = NwAddr(0x3fff_ffff);
        let high = NwAddr(0xc000_0000);
        let zero = NwAddr(0);
        assert!(low.in_prefix(zero, 1));
        assert!(!high.in_prefix(zero, 1));
        assert!(high.in_prefix(NwAddr(0x8000_0000), 1));
    }

    #[test]
    fn display_forms() {
        assert_eq!(SwitchId(3).to_string(), "s3");
        assert_eq!(HostId(2).to_string(), "h2");
        assert_eq!(PortId(9).to_string(), "p9");
        assert_eq!(FLOOD_PORT.to_string(), "FLOOD");
        assert_eq!(OFPP_CONTROLLER.to_string(), "CONTROLLER");
        assert_eq!(
            MacAddr::for_host(5).to_string(),
            "02:00:00:00:00:05".to_string()
        );
    }

    #[test]
    fn fingerprints_differ_by_value() {
        use crate::fingerprint::fingerprint_of;
        assert_ne!(fingerprint_of(&SwitchId(1)), fingerprint_of(&SwitchId(2)));
        assert_ne!(fingerprint_of(&MacAddr(1)), fingerprint_of(&MacAddr(2)));
    }
}
