//! Deterministic state fingerprinting.
//!
//! The NICE model checker stores only 64-bit fingerprints of explored system
//! states (Section 6: "State-matching is done by comparing and storing hashes
//! of the explored states"). To make those fingerprints reproducible across
//! runs and platforms, this module provides a small, stable FNV-1a based
//! hasher and a [`Fingerprint`] trait implemented by every state-bearing
//! component of the system model.
//!
//! The standard library `DefaultHasher` is deliberately not used: its output
//! is allowed to change between Rust releases, which would break replay files
//! and golden tests.

/// A 64-bit FNV-1a hasher with a few convenience methods for writing the
/// primitive types that appear in the system state.
#[derive(Debug, Clone)]
pub struct Fnv64 {
    state: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Default for Fnv64 {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv64 {
    /// Creates a hasher seeded with the standard FNV offset basis.
    pub fn new() -> Self {
        Fnv64 { state: FNV_OFFSET }
    }

    /// Creates a hasher with an explicit seed, useful for domain separation.
    pub fn with_seed(seed: u64) -> Self {
        let mut h = Fnv64::new();
        h.write_u64(seed);
        h
    }

    /// Folds one byte into the state (the FNV-1a step).
    #[inline(always)]
    fn step(&mut self, b: u8) {
        self.state ^= b as u64;
        self.state = self.state.wrapping_mul(FNV_PRIME);
    }

    /// Folds a whole little-endian word into the state without bouncing
    /// through a byte array: eight unrolled FNV-1a steps. Produces exactly
    /// the same digest as feeding `v.to_le_bytes()` a byte at a time — the
    /// fast path changes the loop structure, never the function — so replay
    /// files and golden fingerprints stay stable.
    #[inline(always)]
    fn step_word(&mut self, v: u64) {
        self.step(v as u8);
        self.step((v >> 8) as u8);
        self.step((v >> 16) as u8);
        self.step((v >> 24) as u8);
        self.step((v >> 32) as u8);
        self.step((v >> 40) as u8);
        self.step((v >> 48) as u8);
        self.step((v >> 56) as u8);
    }

    /// Absorbs a byte slice, processing aligned 8-byte chunks through the
    /// unrolled word path and the tail byte-by-byte.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            // chunks_exact guarantees the length, so try_into cannot fail.
            self.step_word(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        for &b in chunks.remainder() {
            self.step(b);
        }
    }

    /// Absorbs a single byte.
    pub fn write_u8(&mut self, v: u8) {
        self.step(v);
    }

    /// Absorbs a `u16` in little-endian order.
    pub fn write_u16(&mut self, v: u16) {
        self.step(v as u8);
        self.step((v >> 8) as u8);
    }

    /// Absorbs a `u32` in little-endian order.
    pub fn write_u32(&mut self, v: u32) {
        self.step(v as u8);
        self.step((v >> 8) as u8);
        self.step((v >> 16) as u8);
        self.step((v >> 24) as u8);
    }

    /// Absorbs a `u64` in little-endian order (word-at-a-time fast path).
    pub fn write_u64(&mut self, v: u64) {
        self.step_word(v);
    }

    /// Absorbs a `usize` (widened to 64 bits so 32/64-bit platforms agree).
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Absorbs a boolean as a full byte.
    pub fn write_bool(&mut self, v: bool) {
        self.write_u8(v as u8);
    }

    /// Absorbs a string, length-prefixed so that concatenations cannot
    /// collide with each other.
    pub fn write_str(&mut self, s: &str) {
        self.write_usize(s.len());
        self.write_bytes(s.as_bytes());
    }

    /// Returns the current digest.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

/// Types whose value participates in the model-checker state fingerprint.
///
/// Implementations must be *canonical*: two values that are semantically
/// equivalent (for instance two flow tables containing the same rules in a
/// different insertion order, when canonicalisation is enabled) must absorb
/// the same byte stream.
pub trait Fingerprint {
    /// Absorbs this value into `hasher`.
    fn fingerprint(&self, hasher: &mut Fnv64);
}

/// Convenience helper returning the digest of a single value.
pub fn fingerprint_of<T: Fingerprint + ?Sized>(value: &T) -> u64 {
    let mut h = Fnv64::new();
    value.fingerprint(&mut h);
    h.finish()
}

impl Fingerprint for u8 {
    fn fingerprint(&self, hasher: &mut Fnv64) {
        hasher.write_u8(*self);
    }
}

impl Fingerprint for u16 {
    fn fingerprint(&self, hasher: &mut Fnv64) {
        hasher.write_u16(*self);
    }
}

impl Fingerprint for u32 {
    fn fingerprint(&self, hasher: &mut Fnv64) {
        hasher.write_u32(*self);
    }
}

impl Fingerprint for u64 {
    fn fingerprint(&self, hasher: &mut Fnv64) {
        hasher.write_u64(*self);
    }
}

impl Fingerprint for usize {
    fn fingerprint(&self, hasher: &mut Fnv64) {
        hasher.write_usize(*self);
    }
}

impl Fingerprint for bool {
    fn fingerprint(&self, hasher: &mut Fnv64) {
        hasher.write_bool(*self);
    }
}

impl Fingerprint for str {
    fn fingerprint(&self, hasher: &mut Fnv64) {
        hasher.write_str(self);
    }
}

impl Fingerprint for String {
    fn fingerprint(&self, hasher: &mut Fnv64) {
        hasher.write_str(self);
    }
}

impl<T: Fingerprint> Fingerprint for Option<T> {
    fn fingerprint(&self, hasher: &mut Fnv64) {
        match self {
            None => hasher.write_u8(0),
            Some(v) => {
                hasher.write_u8(1);
                v.fingerprint(hasher);
            }
        }
    }
}

impl<T: Fingerprint> Fingerprint for [T] {
    fn fingerprint(&self, hasher: &mut Fnv64) {
        hasher.write_usize(self.len());
        for item in self {
            item.fingerprint(hasher);
        }
    }
}

impl<T: Fingerprint> Fingerprint for Vec<T> {
    fn fingerprint(&self, hasher: &mut Fnv64) {
        self.as_slice().fingerprint(hasher);
    }
}

impl<A: Fingerprint, B: Fingerprint> Fingerprint for (A, B) {
    fn fingerprint(&self, hasher: &mut Fnv64) {
        self.0.fingerprint(hasher);
        self.1.fingerprint(hasher);
    }
}

impl<K: Fingerprint, V: Fingerprint> Fingerprint for std::collections::BTreeMap<K, V> {
    fn fingerprint(&self, hasher: &mut Fnv64) {
        hasher.write_usize(self.len());
        for (k, v) in self {
            k.fingerprint(hasher);
            v.fingerprint(hasher);
        }
    }
}

impl<T: Fingerprint> Fingerprint for std::collections::BTreeSet<T> {
    fn fingerprint(&self, hasher: &mut Fnv64) {
        hasher.write_usize(self.len());
        for v in self {
            v.fingerprint(hasher);
        }
    }
}

impl<T: Fingerprint> Fingerprint for std::collections::VecDeque<T> {
    fn fingerprint(&self, hasher: &mut Fnv64) {
        hasher.write_usize(self.len());
        for v in self {
            v.fingerprint(hasher);
        }
    }
}

impl<T: Fingerprint + ?Sized> Fingerprint for &T {
    fn fingerprint(&self, hasher: &mut Fnv64) {
        (*self).fingerprint(hasher);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_hash_is_offset_basis() {
        assert_eq!(Fnv64::new().finish(), FNV_OFFSET);
    }

    #[test]
    fn deterministic_across_instances() {
        let mut a = Fnv64::new();
        let mut b = Fnv64::new();
        a.write_str("hello");
        a.write_u32(42);
        b.write_str("hello");
        b.write_u32(42);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn known_vector() {
        // FNV-1a of "a" is a published test vector.
        let mut h = Fnv64::new();
        h.write_bytes(b"a");
        assert_eq!(h.finish(), 0xaf63dc4c8601ec8c);
    }

    #[test]
    fn order_sensitivity() {
        let mut a = Fnv64::new();
        a.write_u8(1);
        a.write_u8(2);
        let mut b = Fnv64::new();
        b.write_u8(2);
        b.write_u8(1);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn length_prefix_prevents_string_concat_collisions() {
        let mut a = Fnv64::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = Fnv64::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn option_and_vec_impls() {
        let some: Option<u32> = Some(7);
        let none: Option<u32> = None;
        assert_ne!(fingerprint_of(&some), fingerprint_of(&none));
        let v1 = vec![1u32, 2, 3];
        let v2 = vec![1u32, 2, 3];
        let v3 = vec![3u32, 2, 1];
        assert_eq!(fingerprint_of(&v1), fingerprint_of(&v2));
        assert_ne!(fingerprint_of(&v1), fingerprint_of(&v3));
    }

    #[test]
    fn seeded_hashers_differ() {
        assert_ne!(Fnv64::with_seed(1).finish(), Fnv64::with_seed(2).finish());
    }

    /// Every write method agrees with the byte-at-a-time reference FNV-1a,
    /// including across chunk boundaries of the word-at-a-time fast path.
    #[test]
    fn fast_path_matches_reference_bytes() {
        fn reference(writes: &[&[u8]]) -> u64 {
            let mut state = FNV_OFFSET;
            for bytes in writes {
                for &b in *bytes {
                    state ^= b as u64;
                    state = state.wrapping_mul(FNV_PRIME);
                }
            }
            state
        }

        for len in 0..40usize {
            let data: Vec<u8> = (0..len as u8)
                .map(|b| b.wrapping_mul(37).wrapping_add(11))
                .collect();
            let mut h = Fnv64::new();
            h.write_bytes(&data);
            assert_eq!(h.finish(), reference(&[&data]), "write_bytes length {len}");
        }

        let mut h = Fnv64::new();
        h.write_u16(0x1234);
        h.write_u32(0xdead_beef);
        h.write_u64(0x0123_4567_89ab_cdef);
        assert_eq!(
            h.finish(),
            reference(&[
                &0x1234u16.to_le_bytes(),
                &0xdead_beefu32.to_le_bytes(),
                &0x0123_4567_89ab_cdefu64.to_le_bytes(),
            ])
        );
    }

    /// Golden values: pinned digests that replay files and stored state
    /// fingerprints depend on. If one of these changes, the hash function
    /// changed and every persisted fingerprint is invalidated — do not
    /// update the constants without bumping whatever stores fingerprints.
    #[test]
    fn golden_fingerprint_values() {
        let mut h = Fnv64::new();
        h.write_u64(0x0123_4567_89ab_cdef);
        assert_eq!(h.finish(), 0x37eb_3f33_4776_1c55);

        // The system-state domain-separation seed used by nice-mc.
        assert_eq!(Fnv64::with_seed(0x51a7e).finish(), 0xd1d1_acbf_8fec_99a4);

        let mut h = Fnv64::new();
        h.write_str("nice");
        assert_eq!(h.finish(), 0xdc32_a3c1_d895_5538);

        let mut h = Fnv64::new();
        h.write_u8(7);
        h.write_u16(0x1234);
        h.write_u32(0xdead_beef);
        h.write_u64(u64::MAX);
        let seq: Vec<u8> = (0u8..13).collect();
        h.write_bytes(&seq);
        assert_eq!(h.finish(), 0x4926_b6f1_b7f5_26da);
    }
}
