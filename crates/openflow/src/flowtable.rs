//! The switch flow table with canonical representation.
//!
//! Section 2.2.2 of the paper: *"a flow table can easily have two states that
//! appear different but are semantically equivalent […] we construct a
//! canonical representation of the flow table that derives a unique order of
//! rules with overlapping patterns."*
//!
//! Rules are kept sorted by `(priority descending, canonical pattern order,
//! action list)`. Lookup honours OpenFlow semantics — the highest-priority
//! matching rule wins — and the canonical order makes the relative position
//! of non-overlapping equal-priority rules irrelevant for both lookup and
//! fingerprinting. Disabling canonicalisation (keeping insertion order)
//! reproduces the `NO-SWITCH-REDUCTION` baseline of Table 1.

use crate::action::Action;
use crate::fingerprint::{Fingerprint, Fnv64};
use crate::matchfields::MatchPattern;
use crate::packet::Packet;
use crate::stats::FlowStatsEntry;
use crate::types::PortId;
use std::fmt;

/// Soft (idle) and hard timeouts attached to a rule.
///
/// The model checker does not advance wall-clock time; timeouts are recorded
/// so that an (optional) `expire_rule` transition and the application code can
/// reason about them, matching how the paper discusses BUG-I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Timeouts {
    /// Idle (soft) timeout in abstract seconds; `None` means permanent.
    pub idle: Option<u32>,
    /// Hard timeout in abstract seconds; `None` means permanent.
    pub hard: Option<u32>,
}

impl Timeouts {
    /// A permanent rule (no timeouts), `hard_timer=PERMANENT` in Figure 3.
    pub const PERMANENT: Timeouts = Timeouts {
        idle: None,
        hard: None,
    };

    /// The pyswitch default: `soft_timer=5`, `hard_timer=PERMANENT`.
    pub const SOFT_5: Timeouts = Timeouts {
        idle: Some(5),
        hard: None,
    };

    /// True if the rule can ever expire.
    pub fn can_expire(&self) -> bool {
        self.idle.is_some() || self.hard.is_some()
    }
}

impl Default for Timeouts {
    fn default() -> Self {
        Timeouts::PERMANENT
    }
}

/// Per-rule traffic counters (Section 1.1: "for each rule, the switch
/// maintains traffic counters that measure the bytes and packets processed").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct RuleCounters {
    /// Packets matched.
    pub packets: u64,
    /// Bytes matched.
    pub bytes: u64,
}

/// One entry of the flow table.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FlowRule {
    /// Match pattern.
    pub pattern: MatchPattern,
    /// Priority; higher wins. OpenFlow exact-match rules conventionally get
    /// the maximum priority.
    pub priority: u16,
    /// Action list applied to matching packets, in order.
    pub actions: Vec<Action>,
    /// Timeouts.
    pub timeouts: Timeouts,
    /// Traffic counters.
    pub counters: RuleCounters,
    /// Opaque application-chosen cookie, echoed in stats and useful for
    /// debugging which handler installed the rule.
    pub cookie: u64,
}

impl FlowRule {
    /// Creates a rule with zeroed counters.
    pub fn new(pattern: MatchPattern, priority: u16, actions: Vec<Action>) -> Self {
        FlowRule {
            pattern,
            priority,
            actions,
            timeouts: Timeouts::default(),
            counters: RuleCounters::default(),
            cookie: 0,
        }
    }

    /// Sets the timeouts (builder style).
    pub fn with_timeouts(mut self, timeouts: Timeouts) -> Self {
        self.timeouts = timeouts;
        self
    }

    /// Sets the cookie (builder style).
    pub fn with_cookie(mut self, cookie: u64) -> Self {
        self.cookie = cookie;
        self
    }

    /// The canonical sort key: priority descending, then pattern order,
    /// then actions.
    fn canonical_key(&self) -> (u16, &MatchPattern, &Vec<Action>) {
        (u16::MAX - self.priority, &self.pattern, &self.actions)
    }
}

impl fmt::Display for FlowRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let actions: Vec<String> = self.actions.iter().map(|a| a.to_string()).collect();
        write!(
            f,
            "prio={} match[{}] actions[{}] pkts={}",
            self.priority,
            self.pattern,
            actions.join(","),
            self.counters.packets
        )
    }
}

/// The lookup outcome for one packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TableLookup {
    /// A rule matched; contains the canonical index of the winning rule and a
    /// copy of its action list.
    Match {
        /// Canonical index of the rule that matched.
        rule_index: usize,
        /// The matched rule's actions.
        actions: Vec<Action>,
    },
    /// No rule matched; per the OpenFlow specification the packet goes to the
    /// controller.
    Miss,
}

/// The flow table of one switch.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FlowTable {
    rules: Vec<FlowRule>,
    /// When `true` (the default, NICE's simplified switch model), rules are
    /// kept in canonical order so equivalent tables fingerprint identically.
    /// When `false`, insertion order is preserved (NO-SWITCH-REDUCTION).
    canonical: bool,
}

impl FlowTable {
    /// Creates an empty table with canonicalisation enabled.
    pub fn new() -> Self {
        FlowTable {
            rules: Vec::new(),
            canonical: true,
        }
    }

    /// Creates an empty table with canonicalisation disabled
    /// (the NO-SWITCH-REDUCTION baseline of Table 1).
    pub fn new_without_reduction() -> Self {
        FlowTable {
            rules: Vec::new(),
            canonical: false,
        }
    }

    /// Whether canonicalisation is enabled.
    pub fn is_canonical(&self) -> bool {
        self.canonical
    }

    /// Number of installed rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// True if no rules are installed.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Iterates over the rules in their stored (canonical) order.
    pub fn rules(&self) -> impl Iterator<Item = &FlowRule> {
        self.rules.iter()
    }

    /// Returns the rule at `index` in stored order.
    pub fn rule(&self, index: usize) -> Option<&FlowRule> {
        self.rules.get(index)
    }

    /// Installs a rule. A rule with an identical pattern and priority
    /// replaces the existing entry (counters reset), which is OpenFlow
    /// `ADD` semantics.
    pub fn add_rule(&mut self, rule: FlowRule) {
        if let Some(existing) = self
            .rules
            .iter_mut()
            .find(|r| r.pattern == rule.pattern && r.priority == rule.priority)
        {
            *existing = rule;
        } else {
            self.rules.push(rule);
        }
        self.restore_order();
    }

    /// Removes every rule whose pattern *exactly equals* `pattern`
    /// (OpenFlow strict delete). Returns the number of rules removed.
    pub fn delete_strict(&mut self, pattern: &MatchPattern, priority: u16) -> usize {
        let before = self.rules.len();
        self.rules
            .retain(|r| !(r.pattern == *pattern && r.priority == priority));
        before - self.rules.len()
    }

    /// Removes every rule whose pattern overlaps `pattern` (OpenFlow
    /// non-strict delete uses subset semantics; the applications modelled here
    /// only delete rules they installed, so overlap is an adequate and
    /// conservative interpretation). Returns the number of rules removed.
    pub fn delete_matching(&mut self, pattern: &MatchPattern) -> usize {
        let before = self.rules.len();
        self.rules.retain(|r| !pattern.overlaps(&r.pattern));
        before - self.rules.len()
    }

    /// Removes the rule at canonical index `index`, e.g. when a timeout fires.
    pub fn remove_index(&mut self, index: usize) -> Option<FlowRule> {
        if index < self.rules.len() {
            Some(self.rules.remove(index))
        } else {
            None
        }
    }

    /// Looks up the highest-priority rule matching `pkt` on `in_port`
    /// *without* updating counters.
    pub fn lookup(&self, pkt: &Packet, in_port: PortId) -> TableLookup {
        let mut best: Option<(usize, u16, u32)> = None;
        for (i, rule) in self.rules.iter().enumerate() {
            if rule.pattern.matches(pkt, in_port) {
                let key = (i, rule.priority, rule.pattern.specificity());
                best = match best {
                    None => Some(key),
                    Some((bi, bp, bs)) => {
                        // Higher priority wins; ties broken by specificity,
                        // then by canonical position (stable).
                        if rule.priority > bp
                            || (rule.priority == bp && rule.pattern.specificity() > bs)
                        {
                            Some(key)
                        } else {
                            Some((bi, bp, bs))
                        }
                    }
                };
            }
        }
        match best {
            Some((idx, _, _)) => TableLookup::Match {
                rule_index: idx,
                actions: self.rules[idx].actions.clone(),
            },
            None => TableLookup::Miss,
        }
    }

    /// Looks up and, on a hit, updates the winning rule's counters — the
    /// "match the highest-priority rule, update the counters, perform the
    /// actions" pipeline of Section 1.1.
    pub fn process(&mut self, pkt: &Packet, in_port: PortId) -> TableLookup {
        let result = self.lookup(pkt, in_port);
        if let TableLookup::Match { rule_index, .. } = &result {
            let rule = &mut self.rules[*rule_index];
            rule.counters.packets += 1;
            rule.counters.bytes += pkt.byte_size();
        }
        result
    }

    /// Per-rule statistics in canonical order (flow-stats reply payload).
    pub fn flow_stats(&self) -> Vec<FlowStatsEntry> {
        self.rules
            .iter()
            .enumerate()
            .map(|(i, r)| FlowStatsEntry {
                rule_index: i,
                packets: r.counters.packets,
                bytes: r.counters.bytes,
            })
            .collect()
    }

    /// Re-establishes the canonical order after a mutation.
    fn restore_order(&mut self) {
        if self.canonical {
            self.rules.sort_by(|a, b| {
                let ka = a.canonical_key();
                let kb = b.canonical_key();
                ka.0.cmp(&kb.0)
                    .then_with(|| ka.1.canonical_cmp(kb.1))
                    .then_with(|| ka.2.cmp(kb.2))
            });
        }
    }
}

impl Fingerprint for RuleCounters {
    fn fingerprint(&self, hasher: &mut Fnv64) {
        hasher.write_u64(self.packets);
        hasher.write_u64(self.bytes);
    }
}

impl Fingerprint for Timeouts {
    fn fingerprint(&self, hasher: &mut Fnv64) {
        match self.idle {
            None => hasher.write_u8(0),
            Some(v) => {
                hasher.write_u8(1);
                hasher.write_u32(v);
            }
        }
        match self.hard {
            None => hasher.write_u8(0),
            Some(v) => {
                hasher.write_u8(1);
                hasher.write_u32(v);
            }
        }
    }
}

impl Fingerprint for FlowRule {
    fn fingerprint(&self, hasher: &mut Fnv64) {
        self.pattern.fingerprint(hasher);
        hasher.write_u16(self.priority);
        self.actions.fingerprint(hasher);
        self.timeouts.fingerprint(hasher);
        self.counters.fingerprint(hasher);
        hasher.write_u64(self.cookie);
    }
}

impl Fingerprint for FlowTable {
    fn fingerprint(&self, hasher: &mut Fnv64) {
        // The stored order *is* the canonical order when canonicalisation is
        // enabled; with it disabled, insertion order leaks into the
        // fingerprint — which is exactly the NO-SWITCH-REDUCTION behaviour
        // the paper measures against.
        self.rules.fingerprint(hasher);
    }
}

impl fmt::Display for FlowTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.rules.is_empty() {
            return write!(f, "<empty flow table>");
        }
        for (i, rule) in self.rules.iter().enumerate() {
            writeln!(f, "  [{}] {}", i, rule)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fingerprint::fingerprint_of;
    use crate::types::{MacAddr, NwAddr};

    fn ping(src: u32, dst: u32) -> Packet {
        Packet::l2_ping(1, MacAddr::for_host(src), MacAddr::for_host(dst), 0)
    }

    fn rule_for(src: u32, dst: u32, out: u16) -> FlowRule {
        let pkt = ping(src, dst);
        FlowRule::new(
            MatchPattern::l2_flow(&pkt, PortId(1)),
            100,
            vec![Action::Output(PortId(out))],
        )
    }

    #[test]
    fn empty_table_misses() {
        let table = FlowTable::new();
        assert!(table.is_empty());
        assert_eq!(table.lookup(&ping(1, 2), PortId(1)), TableLookup::Miss);
    }

    #[test]
    fn lookup_matches_installed_rule() {
        let mut table = FlowTable::new();
        table.add_rule(rule_for(1, 2, 7));
        match table.lookup(&ping(1, 2), PortId(1)) {
            TableLookup::Match { actions, .. } => {
                assert_eq!(actions, vec![Action::Output(PortId(7))]);
            }
            TableLookup::Miss => panic!("expected a match"),
        }
        // Different in_port: the l2_flow pattern pins the input port.
        assert_eq!(table.lookup(&ping(1, 2), PortId(9)), TableLookup::Miss);
    }

    #[test]
    fn process_updates_counters() {
        let mut table = FlowTable::new();
        table.add_rule(rule_for(1, 2, 7));
        table.process(&ping(1, 2), PortId(1));
        table.process(&ping(1, 2), PortId(1));
        let stats = table.flow_stats();
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].packets, 2);
        assert!(stats[0].bytes >= 128);
    }

    #[test]
    fn higher_priority_wins() {
        let mut table = FlowTable::new();
        let pkt = ping(1, 2);
        table.add_rule(FlowRule::new(MatchPattern::any(), 1, vec![Action::Drop]));
        table.add_rule(FlowRule::new(
            MatchPattern::l2_flow(&pkt, PortId(1)),
            200,
            vec![Action::Output(PortId(3))],
        ));
        match table.lookup(&pkt, PortId(1)) {
            TableLookup::Match { actions, .. } => {
                assert_eq!(actions, vec![Action::Output(PortId(3))])
            }
            TableLookup::Miss => panic!("expected match"),
        }
        // A packet only matching the wildcard falls back to it.
        match table.lookup(&ping(5, 6), PortId(1)) {
            TableLookup::Match { actions, .. } => assert_eq!(actions, vec![Action::Drop]),
            TableLookup::Miss => panic!("expected wildcard match"),
        }
    }

    #[test]
    fn equal_priority_tie_broken_by_specificity() {
        let mut table = FlowTable::new();
        let pkt = ping(1, 2);
        table.add_rule(FlowRule::new(
            MatchPattern::l2_dst_only(pkt.dst_mac),
            100,
            vec![Action::Output(PortId(1))],
        ));
        table.add_rule(FlowRule::new(
            MatchPattern::l2_flow(&pkt, PortId(1)),
            100,
            vec![Action::Output(PortId(2))],
        ));
        match table.lookup(&pkt, PortId(1)) {
            TableLookup::Match { actions, .. } => {
                assert_eq!(actions, vec![Action::Output(PortId(2))])
            }
            TableLookup::Miss => panic!("expected match"),
        }
    }

    #[test]
    fn canonical_order_is_insertion_independent() {
        // Two non-overlapping microflow rules: Section 2.2.2's motivating
        // example — their order must not matter.
        let r1 = rule_for(1, 2, 3);
        let r2 = rule_for(2, 1, 4);

        let mut a = FlowTable::new();
        a.add_rule(r1.clone());
        a.add_rule(r2.clone());

        let mut b = FlowTable::new();
        b.add_rule(r2);
        b.add_rule(r1);

        assert_eq!(fingerprint_of(&a), fingerprint_of(&b));
        assert_eq!(a, b);
    }

    #[test]
    fn without_reduction_order_leaks_into_fingerprint() {
        let r1 = rule_for(1, 2, 3);
        let r2 = rule_for(2, 1, 4);

        let mut a = FlowTable::new_without_reduction();
        a.add_rule(r1.clone());
        a.add_rule(r2.clone());

        let mut b = FlowTable::new_without_reduction();
        b.add_rule(r2);
        b.add_rule(r1);

        assert_ne!(fingerprint_of(&a), fingerprint_of(&b));
    }

    #[test]
    fn add_same_pattern_replaces() {
        let mut table = FlowTable::new();
        table.add_rule(rule_for(1, 2, 3));
        table.process(&ping(1, 2), PortId(1));
        table.add_rule(rule_for(1, 2, 9));
        assert_eq!(table.len(), 1);
        // Counters reset on replacement.
        assert_eq!(table.flow_stats()[0].packets, 0);
        match table.lookup(&ping(1, 2), PortId(1)) {
            TableLookup::Match { actions, .. } => {
                assert_eq!(actions, vec![Action::Output(PortId(9))])
            }
            TableLookup::Miss => panic!("expected match"),
        }
    }

    #[test]
    fn strict_delete_removes_exact_rule_only() {
        let mut table = FlowTable::new();
        table.add_rule(rule_for(1, 2, 3));
        table.add_rule(rule_for(2, 1, 4));
        let pat = MatchPattern::l2_flow(&ping(1, 2), PortId(1));
        assert_eq!(table.delete_strict(&pat, 100), 1);
        assert_eq!(table.len(), 1);
        assert_eq!(table.delete_strict(&pat, 100), 0);
    }

    #[test]
    fn delete_matching_removes_overlapping_rules() {
        let mut table = FlowTable::new();
        table.add_rule(rule_for(1, 2, 3));
        table.add_rule(rule_for(2, 1, 4));
        // A fully-wildcarded delete clears the table.
        assert_eq!(table.delete_matching(&MatchPattern::any()), 2);
        assert!(table.is_empty());
    }

    #[test]
    fn wildcard_prefix_rules_for_load_balancer() {
        use crate::matchfields::PrefixMatch;
        let vip = NwAddr::from_octets(10, 0, 0, 100);
        let mut table = FlowTable::new();
        // Split clients into two halves of the address space.
        table.add_rule(FlowRule::new(
            MatchPattern::ip_src_prefix(PrefixMatch::prefix(NwAddr(0), 1), vip),
            50,
            vec![Action::Output(PortId(1))],
        ));
        table.add_rule(FlowRule::new(
            MatchPattern::ip_src_prefix(PrefixMatch::prefix(NwAddr(0x8000_0000), 1), vip),
            50,
            vec![Action::Output(PortId(2))],
        ));
        let mut pkt = Packet::tcp(
            9,
            MacAddr::for_host(9),
            MacAddr::for_host(100),
            NwAddr(0x0a00_0001),
            vip,
            5555,
            80,
            crate::packet::TcpFlags::SYN,
            0,
        );
        match table.lookup(&pkt, PortId(3)) {
            TableLookup::Match { actions, .. } => {
                assert_eq!(actions, vec![Action::Output(PortId(1))])
            }
            TableLookup::Miss => panic!("expected low-half match"),
        }
        pkt.src_ip = NwAddr(0xc0a8_0001);
        match table.lookup(&pkt, PortId(3)) {
            TableLookup::Match { actions, .. } => {
                assert_eq!(actions, vec![Action::Output(PortId(2))])
            }
            TableLookup::Miss => panic!("expected high-half match"),
        }
    }

    #[test]
    fn remove_index_pops_rule() {
        let mut table = FlowTable::new();
        table.add_rule(rule_for(1, 2, 3));
        assert!(table.remove_index(0).is_some());
        assert!(table.remove_index(0).is_none());
    }

    #[test]
    fn display_renders_rules() {
        let mut table = FlowTable::new();
        assert!(table.to_string().contains("empty"));
        table.add_rule(rule_for(1, 2, 3));
        assert!(table.to_string().contains("prio=100"));
    }

    #[test]
    fn timeouts_flags() {
        assert!(!Timeouts::PERMANENT.can_expire());
        assert!(Timeouts::SOFT_5.can_expire());
        assert!(Timeouts {
            idle: None,
            hard: Some(10)
        }
        .can_expire());
    }
}
