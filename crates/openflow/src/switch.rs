//! The simplified OpenFlow switch model (Section 2.2.2).
//!
//! A switch is a flow table, a packet buffer for packets awaiting a
//! controller decision, and per-port counters. It exposes exactly two kinds
//! of processing: handling a data packet ([`Switch::process_packet`], the
//! `process_pkt` transition) and handling an OpenFlow message
//! ([`Switch::apply_of_message`], the `process_of` transition). The channels
//! that feed these transitions live in the model-checker state, not here, so
//! the switch itself is a pure deterministic state machine — given the same
//! inputs it always produces the same outputs, which is what makes replay-
//! based state restoration possible.

use crate::action::{Action, ForwardingDecision};
use crate::fingerprint::{Fingerprint, Fnv64};
use crate::flowtable::{FlowRule, FlowTable, TableLookup};
use crate::messages::{FlowModCommand, OfMessage, PacketInReason, StatsKind};
use crate::packet::Packet;
use crate::stats::PortStatsEntry;
use crate::types::{PortId, SwitchId};
use std::collections::BTreeMap;

/// Identifies a packet buffered at a switch while the controller decides what
/// to do with it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BufferId(pub u64);

/// A packet parked in the switch buffer together with its arrival port.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BufferedPacket {
    /// The buffered packet.
    pub packet: Packet,
    /// The port it arrived on.
    pub in_port: PortId,
}

/// Static switch configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SwitchConfig {
    /// Enable the canonical flow-table representation (Section 2.2.2).
    /// Disabling it reproduces the NO-SWITCH-REDUCTION baseline.
    pub canonical_flow_table: bool,
    /// Maximum number of packets the switch can buffer while awaiting
    /// controller instructions. When the buffer is full further no-match
    /// packets are dropped, which is how the "forgotten packets eventually
    /// exhaust the buffer" failure mode of BUG-IV manifests.
    pub buffer_capacity: usize,
}

impl Default for SwitchConfig {
    fn default() -> Self {
        SwitchConfig {
            canonical_flow_table: true,
            buffer_capacity: 64,
        }
    }
}

/// The statically predicted effect of processing a packet (see
/// [`Switch::predict_packet_fate`]): where copies would be emitted and
/// whether the controller would be involved.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PacketFate {
    /// Ports the packet would be emitted on (flood expanded, deduplicated).
    pub out_ports: Vec<PortId>,
    /// True if a message would (or could) be sent to the controller.
    pub to_controller: bool,
}

/// Everything produced by one switch transition: messages destined for the
/// controller and data-plane forwarding decisions.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SwitchOutput {
    /// OpenFlow messages to enqueue on the switch→controller channel.
    pub to_controller: Vec<OfMessage>,
    /// Packets to deliver on the data plane.
    pub decisions: Vec<ForwardingDecision>,
}

impl SwitchOutput {
    fn merge(&mut self, other: SwitchOutput) {
        self.to_controller.extend(other.to_controller);
        self.decisions.extend(other.decisions);
    }
}

/// The state of one modelled OpenFlow switch.
#[derive(Debug, Clone, PartialEq)]
pub struct Switch {
    /// Datapath identifier.
    pub id: SwitchId,
    /// The switch's ports, in ascending order.
    pub ports: Vec<PortId>,
    /// The flow table.
    pub flow_table: FlowTable,
    /// Packets awaiting a controller decision, keyed by buffer id.
    buffered: BTreeMap<u64, BufferedPacket>,
    /// Per-port statistics.
    port_stats: BTreeMap<PortId, PortStatsEntry>,
    /// Next buffer id to allocate.
    next_buffer_id: u64,
    /// Count of packets dropped because the buffer was full.
    pub buffer_overflow_drops: u64,
    /// Configuration.
    config: SwitchConfig,
}

impl Switch {
    /// Creates a switch with the given ports and default configuration.
    pub fn new(id: SwitchId, ports: Vec<PortId>) -> Self {
        Self::with_config(id, ports, SwitchConfig::default())
    }

    /// Creates a switch with an explicit configuration.
    pub fn with_config(id: SwitchId, mut ports: Vec<PortId>, config: SwitchConfig) -> Self {
        ports.sort();
        ports.dedup();
        let flow_table = if config.canonical_flow_table {
            FlowTable::new()
        } else {
            FlowTable::new_without_reduction()
        };
        let port_stats = ports
            .iter()
            .map(|&p| (p, PortStatsEntry::zero(p)))
            .collect();
        Switch {
            id,
            ports,
            flow_table,
            buffered: BTreeMap::new(),
            port_stats,
            next_buffer_id: 1,
            buffer_overflow_drops: 0,
            config,
        }
    }

    /// The switch configuration.
    pub fn config(&self) -> SwitchConfig {
        self.config
    }

    /// The `switch_join` message this switch announces itself with.
    pub fn join_message(&self) -> OfMessage {
        OfMessage::SwitchJoin {
            switch: self.id,
            ports: self.ports.clone(),
        }
    }

    /// Number of packets currently parked in the buffer.
    pub fn buffered_count(&self) -> usize {
        self.buffered.len()
    }

    /// Iterates over buffered packets in buffer-id order.
    pub fn buffered_packets(&self) -> impl Iterator<Item = (BufferId, &BufferedPacket)> {
        self.buffered.iter().map(|(&id, bp)| (BufferId(id), bp))
    }

    /// Returns the buffered packet stored under `id`, if any.
    pub fn buffered_packet(&self, id: BufferId) -> Option<&BufferedPacket> {
        self.buffered.get(&id.0)
    }

    /// Per-port statistics in port order.
    pub fn port_stats(&self) -> Vec<PortStatsEntry> {
        self.port_stats.values().copied().collect()
    }

    /// Predicts, without mutating anything, what [`Switch::process_packet`]
    /// would do with `packet` arriving on `in_port` in the switch's current
    /// state: the ports the packet would be emitted on and whether a message
    /// would be sent to the controller.
    ///
    /// Used by the model checker's partial-order reduction to compute
    /// transition footprints, so it must stay in lock step with
    /// [`Switch::process_packet`] / [`Switch::apply_actions`]. It may
    /// over-approximate (e.g. it reports `to_controller` even when the
    /// buffer is full and the packet would actually be dropped) but must
    /// never under-approximate the set of components the real execution can
    /// touch.
    pub fn predict_packet_fate(&self, packet: &Packet, in_port: PortId) -> PacketFate {
        match self.flow_table.lookup(packet, in_port) {
            TableLookup::Match { actions, .. } => self.predict_actions_fate(&actions, in_port),
            TableLookup::Miss => PacketFate {
                out_ports: Vec::new(),
                to_controller: true,
            },
        }
    }

    /// Predicts the fate of applying an explicit action list (the
    /// `packet_out` path) — see [`Switch::predict_packet_fate`].
    pub fn predict_actions_fate(&self, actions: &[Action], in_port: PortId) -> PacketFate {
        let mut fate = PacketFate {
            out_ports: Vec::new(),
            to_controller: false,
        };
        for action in actions {
            match action {
                Action::Output(port) => fate.out_ports.push(*port),
                Action::Flood => fate
                    .out_ports
                    .extend(self.ports.iter().copied().filter(|&p| p != in_port)),
                Action::Drop => {}
                Action::ToController => fate.to_controller = true,
            }
        }
        fate.out_ports.sort();
        fate.out_ports.dedup();
        fate
    }

    /// Processes one data packet arriving on `in_port` — the `process_pkt`
    /// transition of the simplified switch model.
    pub fn process_packet(&mut self, packet: Packet, in_port: PortId) -> SwitchOutput {
        self.count_rx(in_port, &packet);
        match self.flow_table.process(&packet, in_port) {
            TableLookup::Match { actions, .. } => self.apply_actions(&packet, in_port, &actions),
            TableLookup::Miss => {
                // No rule matched: buffer the packet and ask the controller.
                self.send_to_controller(packet, in_port, PacketInReason::NoMatch)
            }
        }
    }

    /// Applies an explicit action list to a packet (used both for matched
    /// rules and for `packet_out` messages).
    pub fn apply_actions(
        &mut self,
        packet: &Packet,
        in_port: PortId,
        actions: &[Action],
    ) -> SwitchOutput {
        let mut out = SwitchOutput::default();
        if actions.is_empty() {
            out.decisions
                .push(ForwardingDecision::Dropped { packet: *packet });
            return out;
        }
        for action in actions {
            match action {
                Action::Output(port) => {
                    self.count_tx(*port, packet);
                    out.decisions.push(ForwardingDecision::Forward {
                        port: *port,
                        packet: *packet,
                    });
                }
                Action::Flood => {
                    let ports: Vec<PortId> = self.ports.clone();
                    for port in ports {
                        if port != in_port {
                            self.count_tx(port, packet);
                        }
                    }
                    out.decisions.push(ForwardingDecision::FloodExcept {
                        in_port,
                        packet: *packet,
                    });
                }
                Action::Drop => {
                    out.decisions
                        .push(ForwardingDecision::Dropped { packet: *packet });
                }
                Action::ToController => {
                    out.merge(self.send_to_controller(*packet, in_port, PacketInReason::Action));
                }
            }
        }
        out
    }

    /// Processes one OpenFlow message from the controller — the `process_of`
    /// transition of the simplified switch model.
    pub fn apply_of_message(&mut self, msg: OfMessage) -> SwitchOutput {
        let mut out = SwitchOutput::default();
        match msg {
            OfMessage::FlowMod {
                command,
                pattern,
                priority,
                actions,
                timeouts,
                cookie,
            } => match command {
                FlowModCommand::Add => {
                    let rule = FlowRule::new(pattern, priority, actions)
                        .with_timeouts(timeouts)
                        .with_cookie(cookie);
                    self.flow_table.add_rule(rule);
                }
                FlowModCommand::DeleteStrict => {
                    self.flow_table.delete_strict(&pattern, priority);
                }
                FlowModCommand::Delete => {
                    self.flow_table.delete_matching(&pattern);
                }
            },
            OfMessage::PacketOut {
                buffer_id,
                packet,
                in_port,
                actions,
            } => {
                let resolved = match buffer_id {
                    Some(id) => self
                        .buffered
                        .remove(&id.0)
                        .map(|bp| (bp.packet, bp.in_port)),
                    None => packet.map(|p| (p, in_port)),
                };
                if let Some((pkt, origin_port)) = resolved {
                    out.merge(self.apply_actions(&pkt, origin_port, &actions));
                }
                // A packet_out naming an unknown/already-released buffer id is
                // silently ignored, as a real switch would.
            }
            OfMessage::StatsRequest { kind, request_id } => match kind {
                StatsKind::Port => {
                    out.to_controller.push(OfMessage::PortStatsReply {
                        switch: self.id,
                        request_id,
                        entries: self.port_stats(),
                    });
                }
                StatsKind::Flow => {
                    out.to_controller.push(OfMessage::FlowStatsReply {
                        switch: self.id,
                        request_id,
                        entries: self.flow_table.flow_stats(),
                    });
                }
            },
            OfMessage::BarrierRequest { request_id } => {
                out.to_controller.push(OfMessage::BarrierReply {
                    switch: self.id,
                    request_id,
                });
            }
            // Switch-to-controller messages never arrive here; ignore
            // defensively so a buggy test harness cannot wedge the model.
            other => {
                debug_assert!(
                    !other.is_switch_to_controller(),
                    "switch received a switch-to-controller message: {other}"
                );
            }
        }
        out
    }

    /// Expires the rule at canonical index `index`, modelling a timeout
    /// firing. Only rules with a timeout configured can expire. Returns the
    /// expired rule.
    pub fn expire_rule(&mut self, index: usize) -> Option<FlowRule> {
        let can_expire = self
            .flow_table
            .rule(index)
            .map(|r| r.timeouts.can_expire())
            .unwrap_or(false);
        if can_expire {
            self.flow_table.remove_index(index)
        } else {
            None
        }
    }

    /// Indices of rules that could expire (used to enable timeout
    /// transitions when the model checker is configured to explore them).
    pub fn expirable_rules(&self) -> Vec<usize> {
        self.flow_table
            .rules()
            .enumerate()
            .filter(|(_, r)| r.timeouts.can_expire())
            .map(|(i, _)| i)
            .collect()
    }

    fn send_to_controller(
        &mut self,
        packet: Packet,
        in_port: PortId,
        reason: PacketInReason,
    ) -> SwitchOutput {
        let mut out = SwitchOutput::default();
        if self.buffered.len() >= self.config.buffer_capacity {
            // Buffer exhausted: the packet is lost. This is the long-run
            // consequence of "forgotten packets" the paper describes.
            self.buffer_overflow_drops += 1;
            out.decisions.push(ForwardingDecision::Dropped { packet });
            return out;
        }
        let buffer_id = BufferId(self.next_buffer_id);
        self.next_buffer_id += 1;
        self.buffered
            .insert(buffer_id.0, BufferedPacket { packet, in_port });
        out.to_controller.push(OfMessage::PacketIn {
            switch: self.id,
            in_port,
            packet,
            buffer_id,
            reason,
        });
        out.decisions.push(ForwardingDecision::SentToController {
            buffer_id,
            packet,
            reason,
        });
        out
    }

    fn count_rx(&mut self, port: PortId, packet: &Packet) {
        let entry = self
            .port_stats
            .entry(port)
            .or_insert_with(|| PortStatsEntry::zero(port));
        entry.rx_packets += 1;
        entry.rx_bytes += packet.byte_size();
    }

    fn count_tx(&mut self, port: PortId, packet: &Packet) {
        let entry = self
            .port_stats
            .entry(port)
            .or_insert_with(|| PortStatsEntry::zero(port));
        entry.tx_packets += 1;
        entry.tx_bytes += packet.byte_size();
    }
}

impl Fingerprint for BufferedPacket {
    fn fingerprint(&self, hasher: &mut Fnv64) {
        self.packet.fingerprint(hasher);
        self.in_port.fingerprint(hasher);
    }
}

impl Fingerprint for Switch {
    fn fingerprint(&self, hasher: &mut Fnv64) {
        self.id.fingerprint(hasher);
        self.flow_table.fingerprint(hasher);
        hasher.write_usize(self.buffered.len());
        for (id, bp) in &self.buffered {
            hasher.write_u64(*id);
            bp.fingerprint(hasher);
        }
        for stats in self.port_stats.values() {
            stats.fingerprint(hasher);
        }
        hasher.write_u64(self.buffer_overflow_drops);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flowtable::Timeouts;
    use crate::matchfields::MatchPattern;
    use crate::types::MacAddr;

    fn ping() -> Packet {
        Packet::l2_ping(1, MacAddr::for_host(1), MacAddr::for_host(2), 0)
    }

    fn switch() -> Switch {
        Switch::new(SwitchId(1), vec![PortId(1), PortId(2), PortId(3)])
    }

    #[test]
    fn miss_buffers_packet_and_notifies_controller() {
        let mut sw = switch();
        let out = sw.process_packet(ping(), PortId(1));
        assert_eq!(out.to_controller.len(), 1);
        assert_eq!(sw.buffered_count(), 1);
        match &out.to_controller[0] {
            OfMessage::PacketIn {
                reason, in_port, ..
            } => {
                assert_eq!(*reason, PacketInReason::NoMatch);
                assert_eq!(*in_port, PortId(1));
            }
            other => panic!("unexpected message {other}"),
        }
        assert!(matches!(
            out.decisions[0],
            ForwardingDecision::SentToController { .. }
        ));
    }

    #[test]
    fn matched_rule_forwards_without_controller() {
        let mut sw = switch();
        let pkt = ping();
        sw.flow_table.add_rule(FlowRule::new(
            MatchPattern::l2_flow(&pkt, PortId(1)),
            100,
            vec![Action::Output(PortId(2))],
        ));
        let out = sw.process_packet(pkt, PortId(1));
        assert!(out.to_controller.is_empty());
        assert_eq!(
            out.decisions,
            vec![ForwardingDecision::Forward {
                port: PortId(2),
                packet: pkt
            }]
        );
        assert_eq!(sw.buffered_count(), 0);
    }

    #[test]
    fn flood_action_produces_flood_decision_and_counts_tx() {
        let mut sw = switch();
        let pkt = ping();
        let out = sw.apply_actions(&pkt, PortId(1), &[Action::Flood]);
        assert_eq!(
            out.decisions,
            vec![ForwardingDecision::FloodExcept {
                in_port: PortId(1),
                packet: pkt
            }]
        );
        let stats = sw.port_stats();
        let tx_ports: Vec<_> = stats
            .iter()
            .filter(|s| s.tx_packets > 0)
            .map(|s| s.port)
            .collect();
        assert_eq!(tx_ports, vec![PortId(2), PortId(3)]);
    }

    #[test]
    fn empty_action_list_drops() {
        let mut sw = switch();
        let out = sw.apply_actions(&ping(), PortId(1), &[]);
        assert!(matches!(
            out.decisions[0],
            ForwardingDecision::Dropped { .. }
        ));
    }

    #[test]
    fn flow_mod_add_then_packet_out_releases_buffer() {
        let mut sw = switch();
        let pkt = ping();
        let out = sw.process_packet(pkt, PortId(1));
        let buffer_id = match &out.to_controller[0] {
            OfMessage::PacketIn { buffer_id, .. } => *buffer_id,
            other => panic!("unexpected {other}"),
        };
        // Controller installs a rule then releases the buffered packet.
        sw.apply_of_message(OfMessage::FlowMod {
            command: FlowModCommand::Add,
            pattern: MatchPattern::l2_flow(&pkt, PortId(1)),
            priority: 100,
            actions: vec![Action::Output(PortId(2))],
            timeouts: Timeouts::PERMANENT,
            cookie: 0,
        });
        assert_eq!(sw.flow_table.len(), 1);
        let out = sw.apply_of_message(OfMessage::PacketOut {
            buffer_id: Some(buffer_id),
            packet: None,
            in_port: PortId(1),
            actions: vec![Action::Output(PortId(2))],
        });
        assert_eq!(sw.buffered_count(), 0);
        assert_eq!(
            out.decisions,
            vec![ForwardingDecision::Forward {
                port: PortId(2),
                packet: pkt
            }]
        );
    }

    #[test]
    fn packet_out_with_unknown_buffer_is_ignored() {
        let mut sw = switch();
        let out = sw.apply_of_message(OfMessage::PacketOut {
            buffer_id: Some(BufferId(99)),
            packet: None,
            in_port: PortId(1),
            actions: vec![Action::Flood],
        });
        assert!(out.decisions.is_empty());
        assert!(out.to_controller.is_empty());
    }

    #[test]
    fn packet_out_with_inline_packet_floods() {
        let mut sw = switch();
        let pkt = ping();
        let out = sw.apply_of_message(OfMessage::PacketOut {
            buffer_id: None,
            packet: Some(pkt),
            in_port: PortId(1),
            actions: vec![Action::Flood],
        });
        assert_eq!(
            out.decisions,
            vec![ForwardingDecision::FloodExcept {
                in_port: PortId(1),
                packet: pkt
            }]
        );
    }

    #[test]
    fn stats_requests_are_answered() {
        let mut sw = switch();
        sw.process_packet(ping(), PortId(1));
        let out = sw.apply_of_message(OfMessage::StatsRequest {
            kind: StatsKind::Port,
            request_id: 7,
        });
        match &out.to_controller[0] {
            OfMessage::PortStatsReply {
                request_id,
                entries,
                ..
            } => {
                assert_eq!(*request_id, 7);
                assert_eq!(entries.len(), 3);
                assert!(entries.iter().any(|e| e.rx_packets == 1));
            }
            other => panic!("unexpected {other}"),
        }
        let out = sw.apply_of_message(OfMessage::StatsRequest {
            kind: StatsKind::Flow,
            request_id: 8,
        });
        assert!(matches!(
            &out.to_controller[0],
            OfMessage::FlowStatsReply { request_id: 8, .. }
        ));
    }

    #[test]
    fn barrier_is_acknowledged() {
        let mut sw = switch();
        let out = sw.apply_of_message(OfMessage::BarrierRequest { request_id: 3 });
        assert_eq!(
            out.to_controller,
            vec![OfMessage::BarrierReply {
                switch: SwitchId(1),
                request_id: 3
            }]
        );
    }

    #[test]
    fn buffer_capacity_limits_pending_packets() {
        let mut sw = Switch::with_config(
            SwitchId(1),
            vec![PortId(1), PortId(2)],
            SwitchConfig {
                canonical_flow_table: true,
                buffer_capacity: 2,
            },
        );
        for i in 0..3 {
            let pkt = Packet::l2_ping(i, MacAddr::for_host(1), MacAddr::for_host(2), i as u32);
            sw.process_packet(pkt, PortId(1));
        }
        assert_eq!(sw.buffered_count(), 2);
        assert_eq!(sw.buffer_overflow_drops, 1);
    }

    #[test]
    fn expire_rule_only_with_timeout() {
        let mut sw = switch();
        let pkt = ping();
        sw.flow_table.add_rule(FlowRule::new(
            MatchPattern::l2_flow(&pkt, PortId(1)),
            100,
            vec![Action::Output(PortId(2))],
        ));
        assert!(sw.expirable_rules().is_empty());
        assert!(sw.expire_rule(0).is_none());
        sw.flow_table.add_rule(
            FlowRule::new(MatchPattern::any(), 1, vec![Action::Drop])
                .with_timeouts(Timeouts::SOFT_5),
        );
        assert_eq!(sw.expirable_rules().len(), 1);
        let idx = sw.expirable_rules()[0];
        assert!(sw.expire_rule(idx).is_some());
    }

    #[test]
    fn join_message_lists_ports() {
        let sw = switch();
        match sw.join_message() {
            OfMessage::SwitchJoin { switch, ports } => {
                assert_eq!(switch, SwitchId(1));
                assert_eq!(ports, vec![PortId(1), PortId(2), PortId(3)]);
            }
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn fingerprint_changes_with_buffered_packets_and_rules() {
        use crate::fingerprint::fingerprint_of;
        let mut a = switch();
        let b = switch();
        assert_eq!(fingerprint_of(&a), fingerprint_of(&b));
        a.process_packet(ping(), PortId(1));
        assert_ne!(fingerprint_of(&a), fingerprint_of(&b));
    }
}
