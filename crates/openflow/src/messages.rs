//! OpenFlow protocol messages exchanged between switches and the controller.
//!
//! The channel with the controller offers reliable, in-order delivery
//! (Section 2.2.2); these messages are therefore plain values moved through
//! [`crate::channel::FifoChannel`]s — no TCP/SSL framing is modelled,
//! matching the paper's simplification.

use crate::fingerprint::{Fingerprint, Fnv64};
use crate::flowtable::{FlowRule, Timeouts};
use crate::matchfields::MatchPattern;
use crate::packet::Packet;
use crate::stats::{FlowStatsEntry, PortStatsEntry};
use crate::switch::BufferId;
use crate::types::{PortId, SwitchId};
use crate::Action;
use std::fmt;

/// Why a switch handed a packet to the controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PacketInReason {
    /// No rule in the flow table matched the packet.
    NoMatch,
    /// A rule with an explicit `ToController` action matched.
    Action,
}

/// Flow-mod subcommands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FlowModCommand {
    /// Install (or replace) a rule.
    Add,
    /// Remove rules whose pattern exactly equals the given pattern/priority.
    DeleteStrict,
    /// Remove rules overlapping the given pattern.
    Delete,
}

/// The kind of statistics requested from a switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StatsKind {
    /// Per-port counters.
    Port,
    /// Per-rule counters.
    Flow,
}

/// An OpenFlow message. Controller-to-switch and switch-to-controller
/// messages share one enum because both travel over the same modelled
/// channel pair and appear in execution traces.
#[derive(Debug, Clone, PartialEq)]
pub enum OfMessage {
    /// Switch → controller: a packet arrived and was buffered for a decision.
    PacketIn {
        /// Switch that buffered the packet.
        switch: SwitchId,
        /// Port the packet arrived on.
        in_port: PortId,
        /// A copy of the packet (the paper sends the header; we carry the
        /// whole modelled packet, which is only headers plus a tag anyway).
        packet: Packet,
        /// Buffer slot where the original packet waits at the switch.
        buffer_id: BufferId,
        /// Why the packet was sent up.
        reason: PacketInReason,
    },
    /// Controller → switch: install or remove a rule.
    FlowMod {
        /// The subcommand.
        command: FlowModCommand,
        /// Pattern the command applies to.
        pattern: MatchPattern,
        /// Priority (for `Add` and `DeleteStrict`).
        priority: u16,
        /// Actions (for `Add`).
        actions: Vec<Action>,
        /// Timeouts (for `Add`).
        timeouts: Timeouts,
        /// Cookie recorded on the installed rule.
        cookie: u64,
    },
    /// Controller → switch: release (or inject) a packet with explicit
    /// actions.
    PacketOut {
        /// Buffered packet to release, if any.
        buffer_id: Option<BufferId>,
        /// Packet carried inline when no buffer is referenced.
        packet: Option<Packet>,
        /// The input port context used when the action list floods.
        in_port: PortId,
        /// Actions to apply.
        actions: Vec<Action>,
    },
    /// Controller → switch: request statistics.
    StatsRequest {
        /// Which statistics to report.
        kind: StatsKind,
        /// An opaque id echoed in the reply so the controller can correlate.
        request_id: u64,
    },
    /// Switch → controller: port statistics reply.
    PortStatsReply {
        /// Switch reporting.
        switch: SwitchId,
        /// Echoed request id.
        request_id: u64,
        /// One entry per port, in port order.
        entries: Vec<PortStatsEntry>,
    },
    /// Switch → controller: flow statistics reply.
    FlowStatsReply {
        /// Switch reporting.
        switch: SwitchId,
        /// Echoed request id.
        request_id: u64,
        /// One entry per rule, in canonical rule order.
        entries: Vec<FlowStatsEntry>,
    },
    /// Controller → switch: barrier request. The switch replies once every
    /// preceding message has been processed; BUG-IX's correct fix uses this.
    BarrierRequest {
        /// Opaque id echoed in the reply.
        request_id: u64,
    },
    /// Switch → controller: barrier reply.
    BarrierReply {
        /// Switch replying.
        switch: SwitchId,
        /// Echoed request id.
        request_id: u64,
    },
    /// Switch → controller: the switch joined the network (sent once when the
    /// control channel comes up).
    SwitchJoin {
        /// The joining switch.
        switch: SwitchId,
        /// The switch's ports.
        ports: Vec<PortId>,
    },
    /// Switch → controller: the switch left the network.
    SwitchLeave {
        /// The leaving switch.
        switch: SwitchId,
    },
    /// Switch → controller: a port changed state (link up/down).
    PortStatus {
        /// Switch reporting the change.
        switch: SwitchId,
        /// Port affected.
        port: PortId,
        /// True if the link is now up.
        link_up: bool,
    },
}

impl OfMessage {
    /// Convenience constructor for a rule installation.
    pub fn add_rule(rule: &FlowRule) -> Self {
        OfMessage::FlowMod {
            command: FlowModCommand::Add,
            pattern: rule.pattern,
            priority: rule.priority,
            actions: rule.actions.clone(),
            timeouts: rule.timeouts,
            cookie: rule.cookie,
        }
    }

    /// A short tag naming the message type, used in traces and transition
    /// labels.
    pub fn kind_name(&self) -> &'static str {
        match self {
            OfMessage::PacketIn { .. } => "packet_in",
            OfMessage::FlowMod {
                command: FlowModCommand::Add,
                ..
            } => "flow_mod_add",
            OfMessage::FlowMod {
                command: FlowModCommand::Delete,
                ..
            } => "flow_mod_del",
            OfMessage::FlowMod {
                command: FlowModCommand::DeleteStrict,
                ..
            } => "flow_mod_del_strict",
            OfMessage::PacketOut { .. } => "packet_out",
            OfMessage::StatsRequest { .. } => "stats_request",
            OfMessage::PortStatsReply { .. } => "port_stats_reply",
            OfMessage::FlowStatsReply { .. } => "flow_stats_reply",
            OfMessage::BarrierRequest { .. } => "barrier_request",
            OfMessage::BarrierReply { .. } => "barrier_reply",
            OfMessage::SwitchJoin { .. } => "switch_join",
            OfMessage::SwitchLeave { .. } => "switch_leave",
            OfMessage::PortStatus { .. } => "port_status",
        }
    }

    /// True for messages travelling from a switch to the controller.
    pub fn is_switch_to_controller(&self) -> bool {
        matches!(
            self,
            OfMessage::PacketIn { .. }
                | OfMessage::PortStatsReply { .. }
                | OfMessage::FlowStatsReply { .. }
                | OfMessage::BarrierReply { .. }
                | OfMessage::SwitchJoin { .. }
                | OfMessage::SwitchLeave { .. }
                | OfMessage::PortStatus { .. }
        )
    }
}

/// A bounded Byzantine mutation of an in-flight controller-to-switch
/// message — the `MessageMutator` pattern: rather than fuzzing random
/// bytes, the model checker enumerates a small set of semantically
/// meaningful corruptions and explores *when* each lands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OfMutation {
    /// Strip the action list (a `FlowMod` add becomes a drop rule, a
    /// `PacketOut` releases its packet into the void).
    DropActions,
    /// Zero the priority of a `FlowMod` add, letting lower-priority rules
    /// shadow it.
    ZeroPriority,
}

impl OfMutation {
    /// A short stable label used in transition labels and traces.
    pub fn name(&self) -> &'static str {
        match self {
            OfMutation::DropActions => "drop_actions",
            OfMutation::ZeroPriority => "zero_priority",
        }
    }
}

impl fmt::Display for OfMutation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl OfMessage {
    /// The mutations applicable to this message. Only mutations that
    /// actually change the message are listed, so every mutation spends
    /// the fault budget on a genuinely different state.
    pub fn mutations(&self) -> Vec<OfMutation> {
        let mut out = Vec::new();
        match self {
            OfMessage::FlowMod {
                command: FlowModCommand::Add,
                priority,
                actions,
                ..
            } => {
                if !actions.is_empty() {
                    out.push(OfMutation::DropActions);
                }
                if *priority != 0 {
                    out.push(OfMutation::ZeroPriority);
                }
            }
            OfMessage::PacketOut { actions, .. } if !actions.is_empty() => {
                out.push(OfMutation::DropActions);
            }
            _ => {}
        }
        out
    }

    /// Applies a mutation in place. Panics if the mutation is not
    /// applicable — callers only apply mutations obtained from
    /// [`OfMessage::mutations`].
    pub fn apply_mutation(&mut self, mutation: OfMutation) {
        match (mutation, self) {
            (OfMutation::DropActions, OfMessage::FlowMod { actions, .. })
            | (OfMutation::DropActions, OfMessage::PacketOut { actions, .. }) => {
                assert!(!actions.is_empty(), "drop_actions is a no-op here");
                actions.clear();
            }
            (OfMutation::ZeroPriority, OfMessage::FlowMod { priority, .. }) => {
                assert_ne!(*priority, 0, "zero_priority is a no-op here");
                *priority = 0;
            }
            (mutation, msg) => panic!("mutation {mutation} not applicable to {}", msg.kind_name()),
        }
    }
}

impl fmt::Display for OfMessage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OfMessage::PacketIn {
                switch,
                in_port,
                packet,
                buffer_id,
                reason,
            } => write!(
                f,
                "packet_in(sw={switch}, port={in_port}, buf={}, reason={:?}, {packet})",
                buffer_id.0, reason
            ),
            OfMessage::FlowMod {
                command,
                pattern,
                priority,
                actions,
                ..
            } => {
                let acts: Vec<String> = actions.iter().map(|a| a.to_string()).collect();
                write!(
                    f,
                    "flow_mod({:?}, prio={priority}, match[{pattern}], actions[{}])",
                    command,
                    acts.join(",")
                )
            }
            OfMessage::PacketOut {
                buffer_id,
                packet,
                actions,
                ..
            } => {
                let acts: Vec<String> = actions.iter().map(|a| a.to_string()).collect();
                write!(
                    f,
                    "packet_out(buf={:?}, inline={}, actions[{}])",
                    buffer_id.map(|b| b.0),
                    packet.map(|p| p.to_string()).unwrap_or_else(|| "-".into()),
                    acts.join(",")
                )
            }
            OfMessage::StatsRequest { kind, request_id } => {
                write!(f, "stats_request({kind:?}, id={request_id})")
            }
            OfMessage::PortStatsReply {
                switch,
                request_id,
                entries,
            } => {
                write!(
                    f,
                    "port_stats_reply(sw={switch}, id={request_id}, {} ports)",
                    entries.len()
                )
            }
            OfMessage::FlowStatsReply {
                switch,
                request_id,
                entries,
            } => {
                write!(
                    f,
                    "flow_stats_reply(sw={switch}, id={request_id}, {} rules)",
                    entries.len()
                )
            }
            OfMessage::BarrierRequest { request_id } => {
                write!(f, "barrier_request(id={request_id})")
            }
            OfMessage::BarrierReply { switch, request_id } => {
                write!(f, "barrier_reply(sw={switch}, id={request_id})")
            }
            OfMessage::SwitchJoin { switch, ports } => {
                write!(f, "switch_join(sw={switch}, {} ports)", ports.len())
            }
            OfMessage::SwitchLeave { switch } => write!(f, "switch_leave(sw={switch})"),
            OfMessage::PortStatus {
                switch,
                port,
                link_up,
            } => {
                write!(f, "port_status(sw={switch}, port={port}, up={link_up})")
            }
        }
    }
}

impl Fingerprint for PacketInReason {
    fn fingerprint(&self, hasher: &mut Fnv64) {
        hasher.write_u8(match self {
            PacketInReason::NoMatch => 0,
            PacketInReason::Action => 1,
        });
    }
}

impl Fingerprint for OfMessage {
    fn fingerprint(&self, hasher: &mut Fnv64) {
        hasher.write_str(self.kind_name());
        match self {
            OfMessage::PacketIn {
                switch,
                in_port,
                packet,
                buffer_id,
                reason,
            } => {
                switch.fingerprint(hasher);
                in_port.fingerprint(hasher);
                packet.fingerprint(hasher);
                hasher.write_u64(buffer_id.0);
                reason.fingerprint(hasher);
            }
            OfMessage::FlowMod {
                command,
                pattern,
                priority,
                actions,
                timeouts,
                cookie,
            } => {
                hasher.write_u8(match command {
                    FlowModCommand::Add => 0,
                    FlowModCommand::DeleteStrict => 1,
                    FlowModCommand::Delete => 2,
                });
                pattern.fingerprint(hasher);
                hasher.write_u16(*priority);
                actions.fingerprint(hasher);
                timeouts.fingerprint(hasher);
                hasher.write_u64(*cookie);
            }
            OfMessage::PacketOut {
                buffer_id,
                packet,
                in_port,
                actions,
            } => {
                match buffer_id {
                    None => hasher.write_u8(0),
                    Some(b) => {
                        hasher.write_u8(1);
                        hasher.write_u64(b.0);
                    }
                }
                packet.fingerprint(hasher);
                in_port.fingerprint(hasher);
                actions.fingerprint(hasher);
            }
            OfMessage::StatsRequest { kind, request_id } => {
                hasher.write_u8(match kind {
                    StatsKind::Port => 0,
                    StatsKind::Flow => 1,
                });
                hasher.write_u64(*request_id);
            }
            OfMessage::PortStatsReply {
                switch,
                request_id,
                entries,
            } => {
                switch.fingerprint(hasher);
                hasher.write_u64(*request_id);
                entries.fingerprint(hasher);
            }
            OfMessage::FlowStatsReply {
                switch,
                request_id,
                entries,
            } => {
                switch.fingerprint(hasher);
                hasher.write_u64(*request_id);
                entries.fingerprint(hasher);
            }
            OfMessage::BarrierRequest { request_id } => hasher.write_u64(*request_id),
            OfMessage::BarrierReply { switch, request_id } => {
                switch.fingerprint(hasher);
                hasher.write_u64(*request_id);
            }
            OfMessage::SwitchJoin { switch, ports } => {
                switch.fingerprint(hasher);
                ports.fingerprint(hasher);
            }
            OfMessage::SwitchLeave { switch } => switch.fingerprint(hasher),
            OfMessage::PortStatus {
                switch,
                port,
                link_up,
            } => {
                switch.fingerprint(hasher);
                port.fingerprint(hasher);
                hasher.write_bool(*link_up);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fingerprint::fingerprint_of;
    use crate::types::MacAddr;

    fn packet_in() -> OfMessage {
        OfMessage::PacketIn {
            switch: SwitchId(1),
            in_port: PortId(1),
            packet: Packet::l2_ping(1, MacAddr::for_host(1), MacAddr::for_host(2), 0),
            buffer_id: BufferId(5),
            reason: PacketInReason::NoMatch,
        }
    }

    #[test]
    fn kind_names_and_direction() {
        assert_eq!(packet_in().kind_name(), "packet_in");
        assert!(packet_in().is_switch_to_controller());
        let fm = OfMessage::FlowMod {
            command: FlowModCommand::Add,
            pattern: MatchPattern::any(),
            priority: 1,
            actions: vec![Action::Flood],
            timeouts: Timeouts::PERMANENT,
            cookie: 0,
        };
        assert_eq!(fm.kind_name(), "flow_mod_add");
        assert!(!fm.is_switch_to_controller());
        assert_eq!(
            OfMessage::BarrierRequest { request_id: 1 }.kind_name(),
            "barrier_request"
        );
    }

    #[test]
    fn add_rule_constructor_copies_rule_fields() {
        let rule = FlowRule::new(MatchPattern::any(), 7, vec![Action::Drop]).with_cookie(9);
        match OfMessage::add_rule(&rule) {
            OfMessage::FlowMod {
                command,
                priority,
                actions,
                cookie,
                ..
            } => {
                assert_eq!(command, FlowModCommand::Add);
                assert_eq!(priority, 7);
                assert_eq!(actions, vec![Action::Drop]);
                assert_eq!(cookie, 9);
            }
            _ => panic!("wrong variant"),
        }
    }

    #[test]
    fn fingerprints_differ_between_message_kinds() {
        let a = packet_in();
        let b = OfMessage::BarrierRequest { request_id: 0 };
        assert_ne!(fingerprint_of(&a), fingerprint_of(&b));
    }

    #[test]
    fn fingerprints_differ_by_reason() {
        let a = packet_in();
        let mut b = packet_in();
        if let OfMessage::PacketIn { reason, .. } = &mut b {
            *reason = PacketInReason::Action;
        }
        assert_ne!(fingerprint_of(&a), fingerprint_of(&b));
    }

    #[test]
    fn mutations_are_bounded_and_change_the_message() {
        let fm = OfMessage::FlowMod {
            command: FlowModCommand::Add,
            pattern: MatchPattern::any(),
            priority: 100,
            actions: vec![Action::Flood],
            timeouts: Timeouts::PERMANENT,
            cookie: 0,
        };
        let muts = fm.mutations();
        assert_eq!(
            muts,
            vec![OfMutation::DropActions, OfMutation::ZeroPriority]
        );
        for m in muts {
            let mut corrupted = fm.clone();
            corrupted.apply_mutation(m);
            assert_ne!(fingerprint_of(&corrupted), fingerprint_of(&fm));
        }
        // Deletes, replies and in-flight switch-to-controller messages are
        // not mutated.
        assert!(packet_in().mutations().is_empty());
        assert!(OfMessage::BarrierRequest { request_id: 1 }
            .mutations()
            .is_empty());
        // A PacketOut with no actions is already a drop: no mutation.
        let po = OfMessage::PacketOut {
            buffer_id: Some(BufferId(3)),
            packet: None,
            in_port: PortId(1),
            actions: vec![],
        };
        assert!(po.mutations().is_empty());
    }

    #[test]
    #[should_panic(expected = "not applicable")]
    fn applying_inapplicable_mutation_panics() {
        let mut msg = OfMessage::BarrierRequest { request_id: 1 };
        msg.apply_mutation(OfMutation::DropActions);
    }

    #[test]
    fn display_is_informative() {
        assert!(packet_in().to_string().contains("packet_in"));
        let po = OfMessage::PacketOut {
            buffer_id: Some(BufferId(3)),
            packet: None,
            in_port: PortId(1),
            actions: vec![Action::Flood],
        };
        assert!(po.to_string().contains("flood"));
    }
}
