//! OpenFlow match patterns (exact-match and wildcard rules).
//!
//! A pattern matches on a subset of the packet header fields plus the switch
//! input port. Fields left as `None` are wildcarded ("don't care" in the
//! paper's terminology). Network addresses additionally support prefix
//! wildcards, which is what the load-balancer application of Section 8.2 uses
//! to split client traffic.

use crate::fingerprint::{Fingerprint, Fnv64};
use crate::packet::{EthType, IpProto, Packet};
use crate::types::{MacAddr, NwAddr, PortId};
use std::cmp::Ordering;
use std::fmt;

/// A network-address prefix match (`address/len`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PrefixMatch {
    /// The prefix value; bits beyond `len` are ignored.
    pub prefix: NwAddr,
    /// Prefix length in bits (0..=32).
    pub len: u8,
}

impl PrefixMatch {
    /// An exact host match (`/32`).
    pub fn exact(addr: NwAddr) -> Self {
        PrefixMatch {
            prefix: addr,
            len: 32,
        }
    }

    /// A prefix match.
    pub fn prefix(prefix: NwAddr, len: u8) -> Self {
        assert!(len <= 32, "prefix length must be at most 32");
        PrefixMatch { prefix, len }
    }

    /// True if `addr` falls inside this prefix.
    pub fn matches(&self, addr: NwAddr) -> bool {
        addr.in_prefix(self.prefix, self.len)
    }

    /// True if every address matched by `other` is also matched by `self`.
    pub fn subsumes(&self, other: &PrefixMatch) -> bool {
        self.len <= other.len && other.prefix.in_prefix(self.prefix, self.len)
    }

    /// True if the two prefixes share at least one address.
    pub fn overlaps(&self, other: &PrefixMatch) -> bool {
        let len = self.len.min(other.len);
        self.prefix.in_prefix(other.prefix, len)
    }
}

impl fmt::Display for PrefixMatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.prefix, self.len)
    }
}

/// An OpenFlow 1.0-style match pattern. `None` fields are wildcards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct MatchPattern {
    /// Switch input port.
    pub in_port: Option<PortId>,
    /// Ethernet source address.
    pub dl_src: Option<MacAddr>,
    /// Ethernet destination address.
    pub dl_dst: Option<MacAddr>,
    /// Ethernet frame type.
    pub dl_type: Option<EthType>,
    /// IPv4 source address (possibly a prefix).
    pub nw_src: Option<PrefixMatch>,
    /// IPv4 destination address (possibly a prefix).
    pub nw_dst: Option<PrefixMatch>,
    /// IP protocol.
    pub nw_proto: Option<IpProto>,
    /// Transport source port.
    pub tp_src: Option<u16>,
    /// Transport destination port.
    pub tp_dst: Option<u16>,
}

impl MatchPattern {
    /// The fully-wildcarded pattern that matches every packet.
    pub fn any() -> Self {
        MatchPattern::default()
    }

    /// An exact "microflow" match on every modelled header field of `pkt`
    /// arriving on `in_port`.
    pub fn microflow(pkt: &Packet, in_port: PortId) -> Self {
        MatchPattern {
            in_port: Some(in_port),
            dl_src: Some(pkt.src_mac),
            dl_dst: Some(pkt.dst_mac),
            dl_type: Some(pkt.eth_type),
            nw_src: Some(PrefixMatch::exact(pkt.src_ip)),
            nw_dst: Some(PrefixMatch::exact(pkt.dst_ip)),
            nw_proto: Some(pkt.nw_proto),
            tp_src: Some(pkt.src_port),
            tp_dst: Some(pkt.dst_port),
        }
    }

    /// The match pattern installed by the MAC-learning application
    /// (Figure 3, line 11): `DL_SRC`, `DL_DST`, `DL_TYPE` and `IN_PORT`.
    pub fn l2_flow(pkt: &Packet, in_port: PortId) -> Self {
        MatchPattern {
            in_port: Some(in_port),
            dl_src: Some(pkt.src_mac),
            dl_dst: Some(pkt.dst_mac),
            dl_type: Some(pkt.eth_type),
            ..MatchPattern::default()
        }
    }

    /// A destination-only layer-2 match (used to illustrate the NO-DELAY
    /// discussion in Section 4: learning applications that match only on the
    /// destination MAC hide new sources from the controller).
    pub fn l2_dst_only(dst: MacAddr) -> Self {
        MatchPattern {
            dl_dst: Some(dst),
            ..MatchPattern::default()
        }
    }

    /// A wildcard match on a source-IP prefix towards a given destination IP,
    /// the rule shape used by the load balancer of Section 8.2.
    pub fn ip_src_prefix(prefix: PrefixMatch, dst_ip: NwAddr) -> Self {
        MatchPattern {
            dl_type: Some(EthType::Ipv4),
            nw_src: Some(prefix),
            nw_dst: Some(PrefixMatch::exact(dst_ip)),
            ..MatchPattern::default()
        }
    }

    /// An exact TCP five-tuple match.
    pub fn tcp_flow(pkt: &Packet) -> Self {
        MatchPattern {
            dl_type: Some(EthType::Ipv4),
            nw_proto: Some(IpProto::Tcp),
            nw_src: Some(PrefixMatch::exact(pkt.src_ip)),
            nw_dst: Some(PrefixMatch::exact(pkt.dst_ip)),
            tp_src: Some(pkt.src_port),
            tp_dst: Some(pkt.dst_port),
            ..MatchPattern::default()
        }
    }

    /// True if the pattern matches `pkt` arriving on `in_port`.
    pub fn matches(&self, pkt: &Packet, in_port: PortId) -> bool {
        if let Some(p) = self.in_port {
            if p != in_port {
                return false;
            }
        }
        if let Some(m) = self.dl_src {
            if m != pkt.src_mac {
                return false;
            }
        }
        if let Some(m) = self.dl_dst {
            if m != pkt.dst_mac {
                return false;
            }
        }
        if let Some(t) = self.dl_type {
            if t != pkt.eth_type {
                return false;
            }
        }
        if let Some(p) = self.nw_src {
            if !p.matches(pkt.src_ip) {
                return false;
            }
        }
        if let Some(p) = self.nw_dst {
            if !p.matches(pkt.dst_ip) {
                return false;
            }
        }
        if let Some(p) = self.nw_proto {
            if p != pkt.nw_proto {
                return false;
            }
        }
        if let Some(p) = self.tp_src {
            if p != pkt.src_port {
                return false;
            }
        }
        if let Some(p) = self.tp_dst {
            if p != pkt.dst_port {
                return false;
            }
        }
        true
    }

    /// Number of non-wildcarded fields; used as a tiebreaker when ordering
    /// rules canonically (more specific patterns first).
    pub fn specificity(&self) -> u32 {
        let mut n = 0;
        n += self.in_port.is_some() as u32;
        n += self.dl_src.is_some() as u32;
        n += self.dl_dst.is_some() as u32;
        n += self.dl_type.is_some() as u32;
        n += self.nw_src.map_or(0, |p| 1 + p.len as u32);
        n += self.nw_dst.map_or(0, |p| 1 + p.len as u32);
        n += self.nw_proto.is_some() as u32;
        n += self.tp_src.is_some() as u32;
        n += self.tp_dst.is_some() as u32;
        n
    }

    /// True if this pattern is a full microflow (no wildcarded fields).
    pub fn is_exact(&self) -> bool {
        self.in_port.is_some()
            && self.dl_src.is_some()
            && self.dl_dst.is_some()
            && self.dl_type.is_some()
            && self.nw_src.is_some_and(|p| p.len == 32)
            && self.nw_dst.is_some_and(|p| p.len == 32)
            && self.nw_proto.is_some()
            && self.tp_src.is_some()
            && self.tp_dst.is_some()
    }

    /// Conservative overlap test: returns `true` when some packet could match
    /// both patterns. Used when deriving the canonical rule order (only the
    /// relative order of *overlapping* rules with equal priority matters).
    pub fn overlaps(&self, other: &MatchPattern) -> bool {
        fn both_eq<T: PartialEq + Copy>(a: Option<T>, b: Option<T>) -> bool {
            match (a, b) {
                (Some(x), Some(y)) => x == y,
                _ => true,
            }
        }
        if !both_eq(self.in_port, other.in_port) {
            return false;
        }
        if !both_eq(self.dl_src, other.dl_src) {
            return false;
        }
        if !both_eq(self.dl_dst, other.dl_dst) {
            return false;
        }
        if !both_eq(self.dl_type, other.dl_type) {
            return false;
        }
        if let (Some(a), Some(b)) = (self.nw_src, other.nw_src) {
            if !a.overlaps(&b) {
                return false;
            }
        }
        if let (Some(a), Some(b)) = (self.nw_dst, other.nw_dst) {
            if !a.overlaps(&b) {
                return false;
            }
        }
        if !both_eq(self.nw_proto, other.nw_proto) {
            return false;
        }
        if !both_eq(self.tp_src, other.tp_src) {
            return false;
        }
        if !both_eq(self.tp_dst, other.tp_dst) {
            return false;
        }
        true
    }

    /// A total, deterministic ordering over patterns used to canonicalise the
    /// flow table. The specific order is irrelevant as long as it is stable.
    pub fn canonical_cmp(&self, other: &MatchPattern) -> Ordering {
        #[allow(clippy::type_complexity)]
        fn key_of(
            p: &MatchPattern,
        ) -> (
            Option<u16>,
            Option<u64>,
            Option<u64>,
            Option<u16>,
            Option<(u32, u8)>,
            Option<(u32, u8)>,
            Option<u8>,
            Option<u16>,
            Option<u16>,
        ) {
            (
                p.in_port.map(|v| v.0),
                p.dl_src.map(|v| v.0),
                p.dl_dst.map(|v| v.0),
                p.dl_type.map(|v| v.value()),
                p.nw_src.map(|v| (v.prefix.0, v.len)),
                p.nw_dst.map(|v| (v.prefix.0, v.len)),
                p.nw_proto.map(|v| v.value()),
                p.tp_src,
                p.tp_dst,
            )
        }
        key_of(self).cmp(&key_of(other))
    }
}

impl fmt::Display for MatchPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut parts: Vec<String> = Vec::new();
        if let Some(p) = self.in_port {
            parts.push(format!("in_port={}", p));
        }
        if let Some(m) = self.dl_src {
            parts.push(format!("dl_src={}", m));
        }
        if let Some(m) = self.dl_dst {
            parts.push(format!("dl_dst={}", m));
        }
        if let Some(t) = self.dl_type {
            parts.push(format!("dl_type=0x{:04x}", t.value()));
        }
        if let Some(p) = self.nw_src {
            parts.push(format!("nw_src={}", p));
        }
        if let Some(p) = self.nw_dst {
            parts.push(format!("nw_dst={}", p));
        }
        if let Some(p) = self.nw_proto {
            parts.push(format!("nw_proto={}", p.value()));
        }
        if let Some(p) = self.tp_src {
            parts.push(format!("tp_src={}", p));
        }
        if let Some(p) = self.tp_dst {
            parts.push(format!("tp_dst={}", p));
        }
        if parts.is_empty() {
            write!(f, "*")
        } else {
            write!(f, "{}", parts.join(","))
        }
    }
}

impl Fingerprint for PrefixMatch {
    fn fingerprint(&self, hasher: &mut Fnv64) {
        self.prefix.fingerprint(hasher);
        hasher.write_u8(self.len);
    }
}

impl Fingerprint for MatchPattern {
    fn fingerprint(&self, hasher: &mut Fnv64) {
        self.in_port.fingerprint(hasher);
        self.dl_src.fingerprint(hasher);
        self.dl_dst.fingerprint(hasher);
        match self.dl_type {
            None => hasher.write_u8(0),
            Some(t) => {
                hasher.write_u8(1);
                hasher.write_u16(t.value());
            }
        }
        self.nw_src.fingerprint(hasher);
        self.nw_dst.fingerprint(hasher);
        match self.nw_proto {
            None => hasher.write_u8(0),
            Some(p) => {
                hasher.write_u8(1);
                hasher.write_u8(p.value());
            }
        }
        self.tp_src.fingerprint(hasher);
        self.tp_dst.fingerprint(hasher);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{MacAddr, NwAddr, PortId};

    fn sample_packet() -> Packet {
        Packet::tcp(
            1,
            MacAddr::for_host(1),
            MacAddr::for_host(2),
            NwAddr::for_host(1),
            NwAddr::for_host(2),
            1000,
            80,
            crate::packet::TcpFlags::SYN,
            0,
        )
    }

    #[test]
    fn wildcard_matches_everything() {
        let pkt = sample_packet();
        assert!(MatchPattern::any().matches(&pkt, PortId(1)));
        assert!(MatchPattern::any().matches(&pkt, PortId(99)));
    }

    #[test]
    fn microflow_matches_only_same_packet_and_port() {
        let pkt = sample_packet();
        let m = MatchPattern::microflow(&pkt, PortId(1));
        assert!(m.matches(&pkt, PortId(1)));
        assert!(!m.matches(&pkt, PortId(2)));
        let mut other = pkt;
        other.dst_port = 81;
        assert!(!m.matches(&other, PortId(1)));
        assert!(m.is_exact());
    }

    #[test]
    fn l2_flow_ignores_l3() {
        let pkt = sample_packet();
        let m = MatchPattern::l2_flow(&pkt, PortId(1));
        let mut other = pkt;
        other.dst_port = 8080;
        other.src_ip = NwAddr::for_host(77);
        assert!(m.matches(&other, PortId(1)));
        assert!(!m.is_exact());
    }

    #[test]
    fn prefix_match_behaviour() {
        let p = PrefixMatch::prefix(NwAddr::from_octets(10, 0, 0, 0), 24);
        assert!(p.matches(NwAddr::from_octets(10, 0, 0, 200)));
        assert!(!p.matches(NwAddr::from_octets(10, 0, 1, 1)));
        assert!(p.subsumes(&PrefixMatch::exact(NwAddr::from_octets(10, 0, 0, 9))));
        assert!(!PrefixMatch::exact(NwAddr::from_octets(10, 0, 0, 9)).subsumes(&p));
        assert!(p.overlaps(&PrefixMatch::prefix(NwAddr::from_octets(10, 0, 0, 128), 25)));
        assert!(!p.overlaps(&PrefixMatch::prefix(NwAddr::from_octets(10, 0, 1, 0), 24)));
    }

    #[test]
    fn ip_src_prefix_rule_matches_by_client_prefix() {
        let vip = NwAddr::from_octets(10, 0, 0, 100);
        let m = MatchPattern::ip_src_prefix(PrefixMatch::prefix(NwAddr(0x8000_0000), 1), vip);
        let mut pkt = sample_packet();
        pkt.dst_ip = vip;
        pkt.src_ip = NwAddr(0x9000_0000);
        assert!(m.matches(&pkt, PortId(1)));
        pkt.src_ip = NwAddr(0x1000_0000);
        assert!(!m.matches(&pkt, PortId(1)));
    }

    #[test]
    fn specificity_orders_wildcards_below_exact() {
        let pkt = sample_packet();
        let exact = MatchPattern::microflow(&pkt, PortId(1));
        let l2 = MatchPattern::l2_flow(&pkt, PortId(1));
        let any = MatchPattern::any();
        assert!(exact.specificity() > l2.specificity());
        assert!(l2.specificity() > any.specificity());
    }

    #[test]
    fn overlap_detection() {
        let pkt = sample_packet();
        let exact = MatchPattern::microflow(&pkt, PortId(1));
        let l2 = MatchPattern::l2_flow(&pkt, PortId(1));
        let any = MatchPattern::any();
        assert!(exact.overlaps(&l2));
        assert!(l2.overlaps(&exact));
        assert!(any.overlaps(&exact));
        let mut other = pkt;
        other.src_mac = MacAddr::for_host(9);
        let disjoint = MatchPattern::l2_flow(&other, PortId(1));
        assert!(!disjoint.overlaps(&exact));
    }

    #[test]
    fn canonical_cmp_is_total_and_antisymmetric() {
        let pkt = sample_packet();
        let a = MatchPattern::microflow(&pkt, PortId(1));
        let b = MatchPattern::l2_flow(&pkt, PortId(2));
        assert_eq!(a.canonical_cmp(&a), Ordering::Equal);
        if a.canonical_cmp(&b) == Ordering::Less {
            assert_eq!(b.canonical_cmp(&a), Ordering::Greater);
        } else {
            assert_eq!(b.canonical_cmp(&a), Ordering::Less);
        }
    }

    #[test]
    fn display_is_star_for_wildcard() {
        assert_eq!(MatchPattern::any().to_string(), "*");
        let pkt = sample_packet();
        let s = MatchPattern::l2_flow(&pkt, PortId(1)).to_string();
        assert!(s.contains("dl_src"));
        assert!(s.contains("in_port"));
    }
}
