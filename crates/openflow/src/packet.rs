//! The concrete packet model.
//!
//! A packet is the composition of the header fields that OpenFlow 1.0
//! switches can match on (Section 1.2 of the paper: source and destination
//! MAC addresses, IP addresses, transport ports and the switch input port),
//! plus the fields the evaluated applications inspect on the controller
//! (EtherType, ARP opcode, TCP flags). Payloads are abstracted to a small
//! integer tag, which is all the modelled end hosts need to correlate
//! requests and replies.

use crate::fingerprint::{Fingerprint, Fnv64};
use crate::types::{MacAddr, NwAddr};
use std::fmt;

/// Ethernet frame types used by the modelled applications.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EthType {
    /// IPv4 (0x0800).
    Ipv4,
    /// ARP (0x0806).
    Arp,
    /// A "layer-2 ping" payload type used by the performance-evaluation
    /// workload of Section 7 (an arbitrary experimental EtherType).
    L2Ping,
    /// Any other EtherType, carried verbatim.
    Other(u16),
}

impl EthType {
    /// The numeric EtherType value.
    pub fn value(self) -> u16 {
        match self {
            EthType::Ipv4 => 0x0800,
            EthType::Arp => 0x0806,
            EthType::L2Ping => 0x88b5,
            EthType::Other(v) => v,
        }
    }

    /// Builds an [`EthType`] from its numeric value.
    pub fn from_value(v: u16) -> Self {
        match v {
            0x0800 => EthType::Ipv4,
            0x0806 => EthType::Arp,
            0x88b5 => EthType::L2Ping,
            other => EthType::Other(other),
        }
    }
}

/// IP protocol numbers used by the modelled applications.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum IpProto {
    /// TCP (6).
    Tcp,
    /// UDP (17).
    Udp,
    /// ICMP (1).
    Icmp,
    /// Any other protocol, carried verbatim.
    Other(u8),
}

impl IpProto {
    /// The numeric protocol number.
    pub fn value(self) -> u8 {
        match self {
            IpProto::Tcp => 6,
            IpProto::Udp => 17,
            IpProto::Icmp => 1,
            IpProto::Other(v) => v,
        }
    }

    /// Builds an [`IpProto`] from its numeric value.
    pub fn from_value(v: u8) -> Self {
        match v {
            6 => IpProto::Tcp,
            17 => IpProto::Udp,
            1 => IpProto::Icmp,
            other => IpProto::Other(other),
        }
    }
}

/// TCP flag bits (only the ones the evaluated applications look at).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TcpFlags(pub u8);

impl TcpFlags {
    /// The SYN bit.
    pub const SYN: TcpFlags = TcpFlags(0x02);
    /// The ACK bit.
    pub const ACK: TcpFlags = TcpFlags(0x10);
    /// The FIN bit.
    pub const FIN: TcpFlags = TcpFlags(0x01);
    /// SYN+ACK.
    pub const SYN_ACK: TcpFlags = TcpFlags(0x12);

    /// True if the SYN bit is set.
    pub fn is_syn(self) -> bool {
        self.0 & Self::SYN.0 != 0
    }

    /// True if the ACK bit is set.
    pub fn is_ack(self) -> bool {
        self.0 & Self::ACK.0 != 0
    }

    /// True if the FIN bit is set.
    pub fn is_fin(self) -> bool {
        self.0 & Self::FIN.0 != 0
    }

    /// Combines two flag sets.
    pub fn union(self, other: TcpFlags) -> TcpFlags {
        TcpFlags(self.0 | other.0)
    }
}

/// A unique identifier for each packet *injected* into the network.
///
/// Copies created by flooding keep the id of the original packet, so
/// correctness properties (for instance `NoBlackHoles`) can account for every
/// copy derived from a single injection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PacketId(pub u64);

/// A concrete network packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Packet {
    /// Provenance identifier (stable across copies made by the network).
    pub id: PacketId,
    /// Source MAC address.
    pub src_mac: MacAddr,
    /// Destination MAC address.
    pub dst_mac: MacAddr,
    /// Ethernet frame type.
    pub eth_type: EthType,
    /// IPv4 source address (meaningful when `eth_type` is IPv4/ARP).
    pub src_ip: NwAddr,
    /// IPv4 destination address (meaningful when `eth_type` is IPv4/ARP).
    pub dst_ip: NwAddr,
    /// IP protocol.
    pub nw_proto: IpProto,
    /// Transport-layer source port.
    pub src_port: u16,
    /// Transport-layer destination port.
    pub dst_port: u16,
    /// TCP flags.
    pub tcp_flags: TcpFlags,
    /// ARP opcode: 1 = request, 2 = reply, 0 = not ARP.
    pub arp_op: u8,
    /// Abstract payload tag (e.g. a sequence number used by the modelled
    /// end hosts to pair pings and replies).
    pub payload: u32,
}

impl Packet {
    /// Creates a minimal "layer-2 ping" packet between two MAC addresses, the
    /// workload the paper uses for its performance evaluation (Section 7).
    pub fn l2_ping(id: u64, src_mac: MacAddr, dst_mac: MacAddr, payload: u32) -> Self {
        Packet {
            id: PacketId(id),
            src_mac,
            dst_mac,
            eth_type: EthType::L2Ping,
            src_ip: NwAddr(0),
            dst_ip: NwAddr(0),
            nw_proto: IpProto::Other(0),
            src_port: 0,
            dst_port: 0,
            tcp_flags: TcpFlags::default(),
            arp_op: 0,
            payload,
        }
    }

    /// Creates a TCP packet.
    #[allow(clippy::too_many_arguments)]
    pub fn tcp(
        id: u64,
        src_mac: MacAddr,
        dst_mac: MacAddr,
        src_ip: NwAddr,
        dst_ip: NwAddr,
        src_port: u16,
        dst_port: u16,
        flags: TcpFlags,
        payload: u32,
    ) -> Self {
        Packet {
            id: PacketId(id),
            src_mac,
            dst_mac,
            eth_type: EthType::Ipv4,
            src_ip,
            dst_ip,
            nw_proto: IpProto::Tcp,
            src_port,
            dst_port,
            tcp_flags: flags,
            arp_op: 0,
            payload,
        }
    }

    /// Creates an ARP request asking "who has `target_ip`".
    pub fn arp_request(id: u64, src_mac: MacAddr, src_ip: NwAddr, target_ip: NwAddr) -> Self {
        Packet {
            id: PacketId(id),
            src_mac,
            dst_mac: MacAddr::BROADCAST,
            eth_type: EthType::Arp,
            src_ip,
            dst_ip: target_ip,
            nw_proto: IpProto::Other(0),
            src_port: 0,
            dst_port: 0,
            tcp_flags: TcpFlags::default(),
            arp_op: 1,
            payload: 0,
        }
    }

    /// Creates an ARP reply answering an [`Packet::arp_request`].
    pub fn arp_reply(
        id: u64,
        src_mac: MacAddr,
        src_ip: NwAddr,
        dst_mac: MacAddr,
        dst_ip: NwAddr,
    ) -> Self {
        Packet {
            id: PacketId(id),
            src_mac,
            dst_mac,
            eth_type: EthType::Arp,
            src_ip,
            dst_ip,
            nw_proto: IpProto::Other(0),
            src_port: 0,
            dst_port: 0,
            tcp_flags: TcpFlags::default(),
            arp_op: 2,
            payload: 0,
        }
    }

    /// Returns a copy of the packet that swaps source and destination
    /// addressing at every layer — the shape of a reply generated by the
    /// modelled server/echo hosts.
    pub fn reply_template(&self, new_id: u64) -> Packet {
        Packet {
            id: PacketId(new_id),
            src_mac: self.dst_mac,
            dst_mac: self.src_mac,
            eth_type: self.eth_type,
            src_ip: self.dst_ip,
            dst_ip: self.src_ip,
            nw_proto: self.nw_proto,
            src_port: self.dst_port,
            dst_port: self.src_port,
            tcp_flags: self.tcp_flags,
            arp_op: self.arp_op,
            payload: self.payload,
        }
    }

    /// True if this is an ARP packet.
    pub fn is_arp(&self) -> bool {
        self.eth_type == EthType::Arp
    }

    /// True if this is a TCP/IPv4 packet.
    pub fn is_tcp(&self) -> bool {
        self.eth_type == EthType::Ipv4 && self.nw_proto == IpProto::Tcp
    }

    /// The abstract "size" of the packet in bytes, used for byte counters.
    /// Header-only packets count 64 bytes plus the abstract payload size.
    pub fn byte_size(&self) -> u64 {
        64 + (self.payload as u64 & 0xff)
    }

    /// A short human-readable description used in execution traces.
    pub fn describe(&self) -> String {
        match self.eth_type {
            EthType::Arp => format!(
                "ARP[{}] {}->{} ({}->{})",
                if self.arp_op == 1 { "req" } else { "rep" },
                self.src_mac,
                self.dst_mac,
                self.src_ip,
                self.dst_ip
            ),
            EthType::Ipv4 => format!(
                "IP {}->{} {}:{}->{}:{}{}",
                self.src_mac,
                self.dst_mac,
                self.src_ip,
                self.src_port,
                self.dst_ip,
                self.dst_port,
                if self.tcp_flags.is_syn() { " SYN" } else { "" }
            ),
            _ => format!(
                "L2 {}->{} type=0x{:04x} payload={}",
                self.src_mac,
                self.dst_mac,
                self.eth_type.value(),
                self.payload
            ),
        }
    }
}

impl fmt::Display for Packet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pkt#{} {}", self.id.0, self.describe())
    }
}

impl Fingerprint for EthType {
    fn fingerprint(&self, hasher: &mut Fnv64) {
        hasher.write_u16(self.value());
    }
}

impl Fingerprint for IpProto {
    fn fingerprint(&self, hasher: &mut Fnv64) {
        hasher.write_u8(self.value());
    }
}

impl Fingerprint for TcpFlags {
    fn fingerprint(&self, hasher: &mut Fnv64) {
        hasher.write_u8(self.0);
    }
}

impl Fingerprint for PacketId {
    fn fingerprint(&self, hasher: &mut Fnv64) {
        hasher.write_u64(self.0);
    }
}

impl Fingerprint for Packet {
    fn fingerprint(&self, hasher: &mut Fnv64) {
        // The provenance id is deliberately left out: it is bookkeeping for
        // correctness properties, not part of the semantic network state.
        // Including it would make interleavings that produce identical
        // network contents hash differently, artificially inflating the
        // explored state count.
        self.src_mac.fingerprint(hasher);
        self.dst_mac.fingerprint(hasher);
        self.eth_type.fingerprint(hasher);
        self.src_ip.fingerprint(hasher);
        self.dst_ip.fingerprint(hasher);
        self.nw_proto.fingerprint(hasher);
        hasher.write_u16(self.src_port);
        hasher.write_u16(self.dst_port);
        self.tcp_flags.fingerprint(hasher);
        hasher.write_u8(self.arp_op);
        hasher.write_u32(self.payload);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fingerprint::fingerprint_of;

    #[test]
    fn eth_type_roundtrip() {
        for v in [0x0800u16, 0x0806, 0x88b5, 0x1234] {
            assert_eq!(EthType::from_value(v).value(), v);
        }
    }

    #[test]
    fn ip_proto_roundtrip() {
        for v in [6u8, 17, 1, 99] {
            assert_eq!(IpProto::from_value(v).value(), v);
        }
    }

    #[test]
    fn tcp_flag_queries() {
        assert!(TcpFlags::SYN.is_syn());
        assert!(!TcpFlags::SYN.is_ack());
        assert!(TcpFlags::SYN_ACK.is_syn());
        assert!(TcpFlags::SYN_ACK.is_ack());
        assert!(TcpFlags::FIN.is_fin());
        assert!(TcpFlags::SYN.union(TcpFlags::ACK).is_ack());
    }

    #[test]
    fn l2_ping_has_unicast_macs_by_construction() {
        let p = Packet::l2_ping(1, MacAddr::for_host(1), MacAddr::for_host(2), 7);
        assert!(!p.src_mac.is_group());
        assert!(!p.dst_mac.is_group());
        assert_eq!(p.payload, 7);
        assert_eq!(p.eth_type, EthType::L2Ping);
    }

    #[test]
    fn reply_template_swaps_addressing() {
        let p = Packet::tcp(
            1,
            MacAddr::for_host(1),
            MacAddr::for_host(2),
            NwAddr::for_host(1),
            NwAddr::for_host(2),
            1234,
            80,
            TcpFlags::SYN,
            0,
        );
        let r = p.reply_template(2);
        assert_eq!(r.src_mac, p.dst_mac);
        assert_eq!(r.dst_mac, p.src_mac);
        assert_eq!(r.src_ip, p.dst_ip);
        assert_eq!(r.dst_ip, p.src_ip);
        assert_eq!(r.src_port, p.dst_port);
        assert_eq!(r.dst_port, p.src_port);
        assert_eq!(r.id, PacketId(2));
    }

    #[test]
    fn arp_request_is_broadcast() {
        let p = Packet::arp_request(
            3,
            MacAddr::for_host(1),
            NwAddr::for_host(1),
            NwAddr::for_host(9),
        );
        assert!(p.dst_mac.is_broadcast());
        assert!(p.is_arp());
        assert_eq!(p.arp_op, 1);
    }

    #[test]
    fn arp_reply_targets_requester() {
        let p = Packet::arp_reply(
            4,
            MacAddr::for_host(9),
            NwAddr::for_host(9),
            MacAddr::for_host(1),
            NwAddr::for_host(1),
        );
        assert_eq!(p.dst_mac, MacAddr::for_host(1));
        assert_eq!(p.arp_op, 2);
    }

    #[test]
    fn fingerprint_distinguishes_fields() {
        let a = Packet::l2_ping(1, MacAddr::for_host(1), MacAddr::for_host(2), 0);
        let mut b = a;
        b.payload = 1;
        assert_ne!(fingerprint_of(&a), fingerprint_of(&b));
        let mut c = a;
        c.dst_mac = MacAddr::for_host(3);
        assert_ne!(fingerprint_of(&a), fingerprint_of(&c));
        assert_eq!(fingerprint_of(&a), fingerprint_of(&a.clone()));
    }

    #[test]
    fn fingerprint_ignores_provenance_id() {
        let a = Packet::l2_ping(1, MacAddr::for_host(1), MacAddr::for_host(2), 0);
        let mut b = a;
        b.id = PacketId(999);
        assert_eq!(fingerprint_of(&a), fingerprint_of(&b));
    }

    #[test]
    fn byte_size_is_positive_and_payload_sensitive() {
        let a = Packet::l2_ping(1, MacAddr::for_host(1), MacAddr::for_host(2), 0);
        let b = Packet::l2_ping(1, MacAddr::for_host(1), MacAddr::for_host(2), 10);
        assert!(a.byte_size() >= 64);
        assert!(b.byte_size() > a.byte_size());
    }

    #[test]
    fn describe_mentions_protocol() {
        let syn = Packet::tcp(
            1,
            MacAddr::for_host(1),
            MacAddr::for_host(2),
            NwAddr::for_host(1),
            NwAddr::for_host(2),
            1234,
            80,
            TcpFlags::SYN,
            0,
        );
        assert!(syn.describe().contains("SYN"));
        let arp = Packet::arp_request(
            2,
            MacAddr::for_host(1),
            NwAddr::for_host(1),
            NwAddr::for_host(2),
        );
        assert!(arp.describe().contains("ARP"));
    }
}
