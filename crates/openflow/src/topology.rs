//! Network topology descriptions.
//!
//! A topology is the static input NICE receives alongside the controller
//! program (Figure 2): the switches with their ports, the end hosts with
//! their addresses and attachment points, and the switch-to-switch links.
//! Host *mobility* is dynamic state owned by the host models; the topology
//! only records the initial attachment and any spare ports a mobile host can
//! move to.

use crate::fingerprint::{Fingerprint, Fnv64};
use crate::types::{HostId, MacAddr, NwAddr, PortId, SwitchId};
use std::collections::BTreeMap;
use std::fmt;

/// A host attachment point: a switch and one of its ports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Location {
    /// The switch the host is plugged into.
    pub switch: SwitchId,
    /// The switch port.
    pub port: PortId,
}

impl fmt::Display for Location {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.switch, self.port)
    }
}

impl Fingerprint for Location {
    fn fingerprint(&self, hasher: &mut Fnv64) {
        self.switch.fingerprint(hasher);
        self.port.fingerprint(hasher);
    }
}

/// What sits on the far side of a switch port.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Endpoint {
    /// An end host.
    Host(HostId),
    /// Another switch's port.
    SwitchPort(SwitchId, PortId),
    /// Nothing (an unused port; flooded copies sent here leave the network).
    Unconnected,
}

/// Description of one switch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SwitchSpec {
    /// Datapath id.
    pub id: SwitchId,
    /// Ports, ascending.
    pub ports: Vec<PortId>,
}

/// Description of one host.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HostSpec {
    /// Host id.
    pub id: HostId,
    /// The host's MAC address.
    pub mac: MacAddr,
    /// The host's IPv4 address.
    pub ip: NwAddr,
    /// Initial attachment point.
    pub location: Location,
}

/// A bidirectional switch-to-switch link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkSpec {
    /// One end.
    pub a: Location,
    /// The other end.
    pub b: Location,
}

/// A static network topology.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Topology {
    switches: BTreeMap<SwitchId, SwitchSpec>,
    hosts: BTreeMap<HostId, HostSpec>,
    links: Vec<LinkSpec>,
    /// Switch-port → endpoint adjacency derived from hosts and links.
    adjacency: BTreeMap<(SwitchId, PortId), Endpoint>,
}

impl Topology {
    /// Starts building a topology.
    pub fn builder() -> TopologyBuilder {
        TopologyBuilder::default()
    }

    /// The switches, in id order.
    pub fn switches(&self) -> impl Iterator<Item = &SwitchSpec> {
        self.switches.values()
    }

    /// The hosts, in id order.
    pub fn hosts(&self) -> impl Iterator<Item = &HostSpec> {
        self.hosts.values()
    }

    /// The switch-to-switch links.
    pub fn links(&self) -> &[LinkSpec] {
        &self.links
    }

    /// Number of switches.
    pub fn switch_count(&self) -> usize {
        self.switches.len()
    }

    /// Number of hosts.
    pub fn host_count(&self) -> usize {
        self.hosts.len()
    }

    /// Looks up a switch.
    pub fn switch(&self, id: SwitchId) -> Option<&SwitchSpec> {
        self.switches.get(&id)
    }

    /// Looks up a host.
    pub fn host(&self, id: HostId) -> Option<&HostSpec> {
        self.hosts.get(&id)
    }

    /// Finds the host owning a MAC address.
    pub fn host_by_mac(&self, mac: MacAddr) -> Option<&HostSpec> {
        self.hosts.values().find(|h| h.mac == mac)
    }

    /// Finds the host owning an IP address.
    pub fn host_by_ip(&self, ip: NwAddr) -> Option<&HostSpec> {
        self.hosts.values().find(|h| h.ip == ip)
    }

    /// What the static topology says is connected to `(switch, port)`.
    /// Host mobility can override host attachments at run time.
    pub fn endpoint(&self, switch: SwitchId, port: PortId) -> Endpoint {
        self.adjacency
            .get(&(switch, port))
            .copied()
            .unwrap_or(Endpoint::Unconnected)
    }

    /// The peer switch port of a switch-to-switch link, if `(switch, port)`
    /// is one of its ends.
    pub fn switch_peer(&self, switch: SwitchId, port: PortId) -> Option<Location> {
        match self.endpoint(switch, port) {
            Endpoint::SwitchPort(s, p) => Some(Location { switch: s, port: p }),
            _ => None,
        }
    }

    /// Ports of `switch` that have no static endpoint; a mobile host can move
    /// to these.
    pub fn free_ports(&self, switch: SwitchId) -> Vec<PortId> {
        match self.switches.get(&switch) {
            None => Vec::new(),
            Some(spec) => spec
                .ports
                .iter()
                .copied()
                .filter(|&p| matches!(self.endpoint(switch, p), Endpoint::Unconnected))
                .collect(),
        }
    }

    /// All candidate MAC addresses in the system (hosts plus broadcast),
    /// the "domain knowledge" Section 3.2 uses to constrain symbolic packet
    /// fields.
    pub fn known_macs(&self) -> Vec<MacAddr> {
        let mut macs: Vec<MacAddr> = self.hosts.values().map(|h| h.mac).collect();
        macs.push(MacAddr::BROADCAST);
        macs.sort();
        macs.dedup();
        macs
    }

    /// All candidate IP addresses in the system.
    pub fn known_ips(&self) -> Vec<NwAddr> {
        let mut ips: Vec<NwAddr> = self.hosts.values().map(|h| h.ip).collect();
        ips.sort();
        ips.dedup();
        ips
    }

    // ----- Canned topologies used throughout the paper -----

    /// The Figure 1 / Section 7 topology: host A — switch 1 — switch 2 —
    /// host B. Hosts attach on port 1 of their switch; the inter-switch link
    /// uses port 2 on both switches. One extra free port (port 3) is left on
    /// each switch so a mobile host has somewhere to move (BUG-I).
    pub fn linear_two_switches() -> Topology {
        Topology::builder()
            .switch(SwitchId(1), &[1, 2, 3])
            .switch(SwitchId(2), &[1, 2, 3])
            .host(HostId(1), SwitchId(1), PortId(1))
            .host(HostId(2), SwitchId(2), PortId(1))
            .link(SwitchId(1), PortId(2), SwitchId(2), PortId(2))
            .build()
    }

    /// A single switch with `n` hosts attached on ports 1..=n, the topology
    /// used for the load balancer (one client plus two server replicas).
    pub fn single_switch(n: u32) -> Topology {
        let mut b =
            Topology::builder().switch(SwitchId(1), &(1..=(n as u16 + 1)).collect::<Vec<_>>());
        for h in 1..=n {
            b = b.host(HostId(h), SwitchId(1), PortId(h as u16));
        }
        b.build()
    }

    /// Three switches in a triangle with one sender host at switch 1 and two
    /// receiver hosts at switch 2; switch 3 lies on the on-demand path
    /// (Section 8.3). Also the smallest topology with a forwarding loop,
    /// used for BUG-III.
    pub fn triangle() -> Topology {
        Topology::builder()
            .switch(SwitchId(1), &[1, 2, 3, 4])
            .switch(SwitchId(2), &[1, 2, 3, 4])
            .switch(SwitchId(3), &[1, 2, 3])
            .host(HostId(1), SwitchId(1), PortId(1))
            .host(HostId(2), SwitchId(2), PortId(1))
            .host(HostId(3), SwitchId(2), PortId(4))
            .link(SwitchId(1), PortId(2), SwitchId(2), PortId(2))
            .link(SwitchId(1), PortId(3), SwitchId(3), PortId(1))
            .link(SwitchId(2), PortId(3), SwitchId(3), PortId(2))
            .build()
    }
}

/// Incremental [`Topology`] construction.
#[derive(Debug, Default)]
pub struct TopologyBuilder {
    switches: Vec<SwitchSpec>,
    hosts: Vec<(HostId, SwitchId, PortId)>,
    links: Vec<LinkSpec>,
}

impl TopologyBuilder {
    /// Adds a switch with the given port numbers.
    pub fn switch(mut self, id: SwitchId, ports: &[u16]) -> Self {
        self.switches.push(SwitchSpec {
            id,
            ports: ports.iter().map(|&p| PortId(p)).collect(),
        });
        self
    }

    /// Adds a host attached to `switch`/`port`. The host's MAC and IP are
    /// derived deterministically from its id.
    pub fn host(mut self, id: HostId, switch: SwitchId, port: PortId) -> Self {
        self.hosts.push((id, switch, port));
        self
    }

    /// Adds a bidirectional switch-to-switch link.
    pub fn link(mut self, sa: SwitchId, pa: PortId, sb: SwitchId, pb: PortId) -> Self {
        self.links.push(LinkSpec {
            a: Location {
                switch: sa,
                port: pa,
            },
            b: Location {
                switch: sb,
                port: pb,
            },
        });
        self
    }

    /// Finalises the topology.
    ///
    /// # Panics
    /// Panics if a host or link references a switch or port that does not
    /// exist, or if two entities claim the same port — catching malformed
    /// test topologies early.
    pub fn build(self) -> Topology {
        let mut topo = Topology::default();
        for spec in self.switches {
            let mut spec = spec;
            spec.ports.sort();
            spec.ports.dedup();
            assert!(
                topo.switches.insert(spec.id, spec.clone()).is_none(),
                "duplicate switch {}",
                spec.id
            );
        }
        let check_port = |topo: &Topology, s: SwitchId, p: PortId| {
            let spec = topo
                .switches
                .get(&s)
                .unwrap_or_else(|| panic!("unknown switch {s}"));
            assert!(spec.ports.contains(&p), "switch {s} has no port {p}");
        };
        for link in self.links {
            check_port(&topo, link.a.switch, link.a.port);
            check_port(&topo, link.b.switch, link.b.port);
            assert!(
                topo.adjacency
                    .insert(
                        (link.a.switch, link.a.port),
                        Endpoint::SwitchPort(link.b.switch, link.b.port)
                    )
                    .is_none(),
                "port {} already connected",
                link.a
            );
            assert!(
                topo.adjacency
                    .insert(
                        (link.b.switch, link.b.port),
                        Endpoint::SwitchPort(link.a.switch, link.a.port)
                    )
                    .is_none(),
                "port {} already connected",
                link.b
            );
            topo.links.push(link);
        }
        for (id, switch, port) in self.hosts {
            check_port(&topo, switch, port);
            let spec = HostSpec {
                id,
                mac: MacAddr::for_host(id.0),
                ip: NwAddr::for_host(id.0),
                location: Location { switch, port },
            };
            assert!(
                topo.adjacency
                    .insert((switch, port), Endpoint::Host(id))
                    .is_none(),
                "port {switch}:{port} already connected"
            );
            assert!(topo.hosts.insert(id, spec).is_none(), "duplicate host {id}");
        }
        topo
    }
}

impl fmt::Display for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "topology: {} switches, {} hosts",
            self.switch_count(),
            self.host_count()
        )?;
        for h in self.hosts.values() {
            writeln!(f, "  {} mac={} ip={} at {}", h.id, h.mac, h.ip, h.location)?;
        }
        for l in &self.links {
            writeln!(f, "  link {} <-> {}", l.a, l.b)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_topology_shape() {
        let t = Topology::linear_two_switches();
        assert_eq!(t.switch_count(), 2);
        assert_eq!(t.host_count(), 2);
        assert_eq!(t.links().len(), 1);
        assert_eq!(
            t.endpoint(SwitchId(1), PortId(1)),
            Endpoint::Host(HostId(1))
        );
        assert_eq!(
            t.endpoint(SwitchId(1), PortId(2)),
            Endpoint::SwitchPort(SwitchId(2), PortId(2))
        );
        assert_eq!(t.endpoint(SwitchId(1), PortId(3)), Endpoint::Unconnected);
        assert_eq!(
            t.switch_peer(SwitchId(2), PortId(2)),
            Some(Location {
                switch: SwitchId(1),
                port: PortId(2)
            })
        );
        assert_eq!(t.free_ports(SwitchId(1)), vec![PortId(3)]);
    }

    #[test]
    fn single_switch_topology() {
        let t = Topology::single_switch(3);
        assert_eq!(t.switch_count(), 1);
        assert_eq!(t.host_count(), 3);
        for h in 1..=3u32 {
            let host = t.host(HostId(h)).unwrap();
            assert_eq!(host.location.switch, SwitchId(1));
            assert_eq!(host.location.port, PortId(h as u16));
        }
        // One spare port remains.
        assert_eq!(t.free_ports(SwitchId(1)), vec![PortId(4)]);
    }

    #[test]
    fn triangle_has_a_cycle() {
        let t = Topology::triangle();
        assert_eq!(t.switch_count(), 3);
        assert_eq!(t.links().len(), 3);
        // Every switch reaches every other switch directly.
        assert!(t.switch_peer(SwitchId(1), PortId(2)).is_some());
        assert!(t.switch_peer(SwitchId(1), PortId(3)).is_some());
        assert!(t.switch_peer(SwitchId(2), PortId(3)).is_some());
        assert_eq!(t.host_count(), 3);
    }

    #[test]
    fn host_lookup_by_address() {
        let t = Topology::linear_two_switches();
        let h1 = t.host(HostId(1)).unwrap();
        assert_eq!(t.host_by_mac(h1.mac).unwrap().id, HostId(1));
        assert_eq!(t.host_by_ip(h1.ip).unwrap().id, HostId(1));
        assert!(t.host_by_mac(MacAddr(0xdead)).is_none());
    }

    #[test]
    fn known_addresses_include_broadcast() {
        let t = Topology::linear_two_switches();
        let macs = t.known_macs();
        assert!(macs.contains(&MacAddr::BROADCAST));
        assert_eq!(macs.len(), 3);
        assert_eq!(t.known_ips().len(), 2);
    }

    #[test]
    #[should_panic(expected = "unknown switch")]
    fn building_with_unknown_switch_panics() {
        Topology::builder()
            .host(HostId(1), SwitchId(9), PortId(1))
            .build();
    }

    #[test]
    #[should_panic(expected = "has no port")]
    fn building_with_unknown_port_panics() {
        Topology::builder()
            .switch(SwitchId(1), &[1])
            .host(HostId(1), SwitchId(1), PortId(9))
            .build();
    }

    #[test]
    #[should_panic(expected = "already connected")]
    fn double_use_of_a_port_panics() {
        Topology::builder()
            .switch(SwitchId(1), &[1])
            .switch(SwitchId(2), &[1])
            .host(HostId(1), SwitchId(1), PortId(1))
            .link(SwitchId(1), PortId(1), SwitchId(2), PortId(1))
            .build();
    }

    #[test]
    fn display_summarises() {
        let s = Topology::linear_two_switches().to_string();
        assert!(s.contains("2 switches"));
        assert!(s.contains("link"));
    }
}
