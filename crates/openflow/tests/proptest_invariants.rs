//! Property-based tests for the OpenFlow substrate: flow-table
//! canonicalisation, lookup soundness and prefix-match algebra.

use nice_openflow::matchfields::PrefixMatch;
use nice_openflow::{
    fingerprint_of, Action, EthType, FlowRule, FlowTable, MacAddr, MatchPattern, NwAddr, Packet,
    PortId, TcpFlags,
};
use proptest::prelude::*;

fn arb_mac() -> impl Strategy<Value = MacAddr> {
    prop_oneof![
        (1u32..5).prop_map(MacAddr::for_host),
        Just(MacAddr::BROADCAST),
    ]
}

fn arb_packet() -> impl Strategy<Value = Packet> {
    (
        arb_mac(),
        arb_mac(),
        0u32..4,
        0u32..4,
        prop_oneof![Just(80u16), Just(1000u16), Just(0u16)],
        prop_oneof![Just(80u16), Just(1000u16), Just(0u16)],
        any::<bool>(),
    )
        .prop_map(
            |(src_mac, dst_mac, src_ip, dst_ip, sport, dport, syn)| Packet {
                id: nice_openflow::PacketId(1),
                src_mac,
                dst_mac,
                eth_type: EthType::Ipv4,
                src_ip: NwAddr::for_host(src_ip),
                dst_ip: NwAddr::for_host(dst_ip),
                nw_proto: nice_openflow::IpProto::Tcp,
                src_port: sport,
                dst_port: dport,
                tcp_flags: if syn { TcpFlags::SYN } else { TcpFlags::ACK },
                arp_op: 0,
                payload: 0,
            },
        )
}

fn arb_port() -> impl Strategy<Value = PortId> {
    (1u16..4).prop_map(PortId)
}

fn arb_rule() -> impl Strategy<Value = FlowRule> {
    (arb_packet(), arb_port(), 1u16..4, 1u16..4).prop_map(|(pkt, in_port, prio, out)| {
        FlowRule::new(
            MatchPattern::l2_flow(&pkt, in_port),
            prio * 10,
            vec![Action::Output(PortId(out))],
        )
    })
}

proptest! {
    /// Canonical flow tables are insertion-order independent: any permutation
    /// of the same rule set produces the same fingerprint (the Section 2.2.2
    /// state-merging argument). Rules sharing a `(pattern, priority)` key are
    /// filtered out first, because OpenFlow ADD semantics make the *last*
    /// such rule win, which is legitimately order dependent.
    #[test]
    fn canonical_table_is_order_independent(rules in prop::collection::vec(arb_rule(), 0..6)) {
        let mut unique: Vec<FlowRule> = Vec::new();
        for r in rules {
            if !unique.iter().any(|u| u.pattern == r.pattern && u.priority == r.priority) {
                unique.push(r);
            }
        }
        let mut forward = FlowTable::new();
        for r in &unique {
            forward.add_rule(r.clone());
        }
        let mut backward = FlowTable::new();
        for r in unique.iter().rev() {
            backward.add_rule(r.clone());
        }
        prop_assert_eq!(fingerprint_of(&forward), fingerprint_of(&backward));
        prop_assert_eq!(forward.len(), backward.len());
    }

    /// Lookup soundness: whatever rule wins the lookup actually matches the
    /// packet, and no other rule with a strictly higher priority matches.
    #[test]
    fn lookup_returns_a_highest_priority_matching_rule(
        rules in prop::collection::vec(arb_rule(), 0..8),
        pkt in arb_packet(),
        in_port in arb_port(),
    ) {
        let mut table = FlowTable::new();
        for r in &rules {
            table.add_rule(r.clone());
        }
        match table.lookup(&pkt, in_port) {
            nice_openflow::flowtable::TableLookup::Match { rule_index, .. } => {
                let winner = table.rule(rule_index).unwrap();
                prop_assert!(winner.pattern.matches(&pkt, in_port));
                for r in table.rules() {
                    if r.pattern.matches(&pkt, in_port) {
                        prop_assert!(r.priority <= winner.priority);
                    }
                }
            }
            nice_openflow::flowtable::TableLookup::Miss => {
                for r in table.rules() {
                    prop_assert!(!r.pattern.matches(&pkt, in_port));
                }
            }
        }
    }

    /// Counters only ever grow, by exactly one packet per processed packet.
    #[test]
    fn counters_are_monotonic(
        rule in arb_rule(),
        packets in prop::collection::vec((arb_packet(), arb_port()), 1..10),
    ) {
        let mut table = FlowTable::new();
        table.add_rule(rule);
        let mut last_total = 0u64;
        for (pkt, port) in packets {
            table.process(&pkt, port);
            let total: u64 = table.flow_stats().iter().map(|s| s.packets).sum();
            prop_assert!(total >= last_total);
            prop_assert!(total <= last_total + 1);
            last_total = total;
        }
    }

    /// Prefix-match algebra: subsumption implies overlap, and an exact match
    /// is subsumed by every prefix of itself.
    #[test]
    fn prefix_subsumption_implies_overlap(addr in any::<u32>(), len_a in 0u8..=32, len_b in 0u8..=32) {
        let a = PrefixMatch::prefix(NwAddr(addr), len_a);
        let b = PrefixMatch::prefix(NwAddr(addr), len_b);
        if a.subsumes(&b) {
            prop_assert!(a.overlaps(&b));
            prop_assert!(len_a <= len_b);
        }
        let exact = PrefixMatch::exact(NwAddr(addr));
        prop_assert!(a.subsumes(&exact));
        prop_assert!(a.matches(NwAddr(addr)) || len_a == 0 || a.prefix.in_prefix(NwAddr(addr), len_a));
    }

    /// The wildcard pattern matches every generated packet; the microflow
    /// pattern of a packet matches exactly that packet on that port.
    #[test]
    fn wildcard_and_microflow_extremes(pkt in arb_packet(), port in arb_port(), other in arb_packet()) {
        prop_assert!(MatchPattern::any().matches(&pkt, port));
        let micro = MatchPattern::microflow(&pkt, port);
        prop_assert!(micro.matches(&pkt, port));
        if other != pkt {
            // A different packet can only match if every modelled field agrees.
            if micro.matches(&other, port) {
                prop_assert_eq!(pkt.src_mac, other.src_mac);
                prop_assert_eq!(pkt.dst_mac, other.dst_mac);
                prop_assert_eq!(pkt.src_ip, other.src_ip);
                prop_assert_eq!(pkt.dst_ip, other.dst_ip);
                prop_assert_eq!(pkt.src_port, other.src_port);
                prop_assert_eq!(pkt.dst_port, other.dst_port);
            }
        }
    }
}
