//! Property-based tests for the finite-domain solver and the concolic
//! explorer: models returned by the solver satisfy the constraints they were
//! asked about, and path exploration is sound (every reported path was
//! actually executed under its representative input).

use nice_sym::{BoolExpr, Domain, Env, Expr, PathExplorer, Solver, SymValue, VarId};
use proptest::prelude::*;
use std::collections::BTreeSet;

/// A small constraint language over two variables with domains {0..=3}.
#[derive(Debug, Clone)]
enum Constraint {
    EqConst(u8, u64),
    NeConst(u8, u64),
    LtConst(u8, u64),
    EqVars,
}

fn arb_constraint() -> impl Strategy<Value = Constraint> {
    prop_oneof![
        (0u8..2, 0u64..4).prop_map(|(v, c)| Constraint::EqConst(v, c)),
        (0u8..2, 0u64..4).prop_map(|(v, c)| Constraint::NeConst(v, c)),
        (0u8..2, 1u64..5).prop_map(|(v, c)| Constraint::LtConst(v, c)),
        Just(Constraint::EqVars),
    ]
}

fn to_bool_expr(c: &Constraint, vars: &[VarId]) -> BoolExpr {
    match c {
        Constraint::EqConst(v, k) => BoolExpr::Eq(Expr::Var(vars[*v as usize]), Expr::Const(*k)),
        Constraint::NeConst(v, k) => BoolExpr::Ne(Expr::Var(vars[*v as usize]), Expr::Const(*k)),
        Constraint::LtConst(v, k) => BoolExpr::Lt(Expr::Var(vars[*v as usize]), Expr::Const(*k)),
        Constraint::EqVars => BoolExpr::Eq(Expr::Var(vars[0]), Expr::Var(vars[1])),
    }
}

proptest! {
    /// Soundness: when the solver reports SAT, the returned model satisfies
    /// every constraint; when it reports UNSAT, brute-force enumeration over
    /// the (tiny) domains agrees.
    #[test]
    fn solver_agrees_with_brute_force(constraints in prop::collection::vec(arb_constraint(), 0..5)) {
        let mut solver = Solver::new();
        let a = solver.fresh_var(Domain::new(0..4));
        let b = solver.fresh_var(Domain::new(0..4));
        let vars = [a, b];
        let exprs: Vec<BoolExpr> = constraints.iter().map(|c| to_bool_expr(c, &vars)).collect();

        let brute_force_sat = (0u64..4).any(|va| {
            (0u64..4).any(|vb| {
                exprs.iter().all(|e| {
                    e.eval_with(&|v| if v == a { Some(va) } else if v == b { Some(vb) } else { None })
                        == Some(true)
                })
            })
        });

        match solver.solve(&exprs) {
            nice_sym::SolveResult::Sat(model) => {
                prop_assert!(brute_force_sat, "solver said SAT but brute force disagrees");
                for e in &exprs {
                    prop_assert_eq!(model.eval(e), Some(true), "model violates {}", e);
                }
            }
            nice_sym::SolveResult::Unsat => {
                prop_assert!(!brute_force_sat, "solver said UNSAT but brute force found a model");
            }
        }
    }

    /// Concolic exploration soundness and completeness for a two-branch
    /// handler: every feasible decision vector over the generated branch
    /// conditions is discovered exactly once.
    #[test]
    fn explorer_covers_all_feasible_paths(c1 in 0u64..4, c2 in 0u64..4) {
        let mut solver = Solver::new();
        let x = solver.fresh_var(Domain::new(0..4));
        let y = solver.fresh_var(Domain::new(0..4));

        let explorer = PathExplorer::default();
        let mut observed: BTreeSet<(bool, bool)> = BTreeSet::new();
        let outcome = explorer.explore(&mut solver, |env| {
            let first = env.branch(&SymValue::var(x).eq_const(c1));
            let second = env.branch(&SymValue::var(y).lt(&SymValue::concrete(c2)));
            observed.insert((first, second));
        });

        // Expected feasible decision vectors by brute force.
        let mut expected: BTreeSet<(bool, bool)> = BTreeSet::new();
        for vx in 0u64..4 {
            for vy in 0u64..4 {
                expected.insert((vx == c1, vy < c2));
            }
        }
        prop_assert_eq!(outcome.paths.len(), expected.len());
        prop_assert_eq!(observed, expected);
        prop_assert!(!outcome.truncated);
    }

    /// The seed assignment always lies inside the declared domains, and
    /// models are total over declared variables.
    #[test]
    fn models_stay_inside_domains(candidates in prop::collection::btree_set(0u64..50, 1..6)) {
        let candidates: Vec<u64> = candidates.into_iter().collect();
        let mut solver = Solver::new();
        let v = solver.fresh_var(Domain::new(candidates.iter().copied()));
        let seed = solver.seed_assignment();
        prop_assert!(candidates.contains(&seed.get(v).unwrap()));
        if let Some(model) = solver.solve_model(&[BoolExpr::Ne(Expr::Var(v), Expr::Const(candidates[0]))]) {
            prop_assert!(candidates.contains(&model.get(v).unwrap()));
            prop_assert_ne!(model.get(v).unwrap(), candidates[0]);
        } else {
            // Unsat only if the domain had a single candidate.
            prop_assert_eq!(candidates.len(), 1);
        }
    }
}
