//! The concolic path explorer.
//!
//! This is the `SymbolicExecution(ctrl, handler, context)` step of Figure 5:
//! given a handler (a closure over a clone of the controller state) and the
//! declared symbolic inputs, it enumerates the handler's feasible code paths
//! and returns one concrete input per path — the *relevant packets* that
//! become new `send` transitions in the model checker.
//!
//! The search is the classic generational ("DART"-style) strategy used by
//! concolic engines: run on a concrete input, record the path constraint,
//! then for every branch along the path ask the solver for an input that
//! follows the same prefix but takes the other side. Inputs that reproduce an
//! already-seen path are discarded, so the result is one representative per
//! equivalence class.

use crate::env::SymExecEnv;
use crate::expr::BoolExpr;
use crate::solver::{Assignment, Solver};
use nice_openflow::Fnv64;
use std::collections::{BTreeSet, VecDeque};

/// Limits on the path exploration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExploreConfig {
    /// Maximum number of distinct paths to return. Symbolic execution can
    /// produce infinite execution trees (Section 9); this is the explicit
    /// bound the paper applies.
    pub max_paths: usize,
    /// Maximum number of branches along a single path whose negations are
    /// queued (bounds the frontier for pathological handlers).
    pub max_branch_depth: usize,
    /// Maximum number of handler executions (including ones that rediscover
    /// known paths).
    pub max_executions: usize,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            max_paths: 64,
            max_branch_depth: 64,
            max_executions: 512,
        }
    }
}

/// One discovered feasible path.
#[derive(Debug, Clone)]
pub struct PathResult {
    /// The concrete input that drives execution down this path — the
    /// representative member of the equivalence class.
    pub assignment: Assignment,
    /// The branch conditions encountered, with the direction taken.
    pub path: Vec<(BoolExpr, bool)>,
    /// Stable fingerprint of the path.
    pub signature: u64,
}

/// The outcome of exploring one handler.
#[derive(Debug, Clone, Default)]
pub struct ExploreOutcome {
    /// One entry per discovered equivalence class, in discovery order.
    pub paths: Vec<PathResult>,
    /// True if a configured limit stopped the search before the frontier was
    /// exhausted (a coverage loss the caller may want to report).
    pub truncated: bool,
    /// Number of handler executions performed.
    pub executions: usize,
}

impl ExploreOutcome {
    /// The representative inputs, one per discovered path.
    pub fn representative_inputs(&self) -> impl Iterator<Item = &Assignment> {
        self.paths.iter().map(|p| &p.assignment)
    }
}

/// The concolic explorer.
#[derive(Debug, Clone, Default)]
pub struct PathExplorer {
    config: ExploreConfig,
}

impl PathExplorer {
    /// Creates an explorer with the given limits.
    pub fn new(config: ExploreConfig) -> Self {
        PathExplorer { config }
    }

    /// The configured limits.
    pub fn config(&self) -> ExploreConfig {
        self.config
    }

    /// Explores every feasible path of `run`.
    ///
    /// `solver` must already hold the declared symbolic variables (typically
    /// created through [`crate::packet::SymPacketVars`] or
    /// [`crate::stats::SymStats`]); `run` executes the handler once under the
    /// provided environment. The closure is invoked multiple times with
    /// different concrete inputs — it must behave deterministically given the
    /// environment (e.g. by operating on a fresh clone of the controller
    /// state each time), which is how the model checker's `discover_packets`
    /// transition uses it.
    pub fn explore<F>(&self, solver: &mut Solver, mut run: F) -> ExploreOutcome
    where
        F: FnMut(&mut SymExecEnv),
    {
        let mut outcome = ExploreOutcome::default();
        let mut seen_paths: BTreeSet<u64> = BTreeSet::new();
        let mut attempted_prefixes: BTreeSet<u64> = BTreeSet::new();
        let mut worklist: VecDeque<Assignment> = VecDeque::new();
        worklist.push_back(solver.seed_assignment());

        while let Some(input) = worklist.pop_front() {
            if outcome.paths.len() >= self.config.max_paths
                || outcome.executions >= self.config.max_executions
            {
                outcome.truncated = true;
                break;
            }

            let mut env = SymExecEnv::new(input.clone());
            run(&mut env);
            outcome.executions += 1;

            let signature = env.path_signature();
            if !seen_paths.insert(signature) {
                continue; // This input rediscovered a known equivalence class.
            }
            let path = env.path().to_vec();

            // Generational expansion: negate each decision along the path.
            let depth = path.len().min(self.config.max_branch_depth);
            if path.len() > self.config.max_branch_depth {
                outcome.truncated = true;
            }
            for i in 0..depth {
                let mut constraints: Vec<BoolExpr> = Vec::with_capacity(i + 1);
                for (cond, taken) in &path[..i] {
                    constraints.push(if *taken { cond.clone() } else { cond.negate() });
                }
                let (cond, taken) = &path[i];
                constraints.push(if *taken { cond.negate() } else { cond.clone() });

                let prefix_sig = prefix_signature(&constraints);
                if !attempted_prefixes.insert(prefix_sig) {
                    continue; // Already queued or proven unsatisfiable.
                }
                if let Some(model) = solver.solve_model(&constraints) {
                    worklist.push_back(model);
                }
            }

            outcome.paths.push(PathResult {
                assignment: input,
                path,
                signature,
            });
        }

        outcome
    }
}

fn prefix_signature(constraints: &[BoolExpr]) -> u64 {
    let mut h = Fnv64::with_seed(0x9e_f1);
    h.write_usize(constraints.len());
    for c in constraints {
        h.write_str(&c.to_string());
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::Env;
    use crate::expr::Domain;
    use crate::value::SymValue;

    /// A toy handler shaped like the pyswitch packet_in handler: two nested
    /// data-dependent branches produce three feasible paths.
    #[test]
    fn explores_all_paths_of_nested_branches() {
        let mut solver = Solver::new();
        let src = solver.fresh_var(Domain::new([2, 3, 0xffff]));
        let dst = solver.fresh_var(Domain::new([2, 3, 0xffff]));

        let explorer = PathExplorer::new(ExploreConfig::default());
        let outcome = explorer.explore(&mut solver, |env| {
            let src = SymValue::var(src);
            let dst = SymValue::var(dst);
            // if src is "broadcast" (0xffff) -> path A
            if env.branch(&src.eq_const(0xffff)) {
                return;
            }
            // else if dst known (== 2) -> path B else path C
            if env.branch(&dst.eq_const(2)) {}
        });

        assert_eq!(outcome.paths.len(), 3, "three feasible paths expected");
        assert!(!outcome.truncated);
        assert!(outcome.executions >= 3);
        // Each representative input drives a distinct path signature.
        let sigs: BTreeSet<u64> = outcome.paths.iter().map(|p| p.signature).collect();
        assert_eq!(sigs.len(), 3);
    }

    #[test]
    fn unreachable_paths_are_not_reported() {
        let mut solver = Solver::new();
        let v = solver.fresh_var(Domain::new([1, 2]));
        let explorer = PathExplorer::default();
        let outcome = explorer.explore(&mut solver, |env| {
            let x = SymValue::var(v);
            if env.branch(&x.eq_const(1)) {
                // Contradictory nested branch: can never be both 1 and 2.
                if env.branch(&x.eq_const(2)) {
                    unreachable!("infeasible path executed");
                }
            }
        });
        // Feasible paths: v==1 (then inner false), v!=1. The inner-true path
        // is infeasible and must not appear.
        assert_eq!(outcome.paths.len(), 2);
    }

    #[test]
    fn handler_without_branches_has_single_path() {
        let mut solver = Solver::new();
        let _v = solver.fresh_var(Domain::new([1, 2, 3]));
        let explorer = PathExplorer::default();
        let mut calls = 0;
        let outcome = explorer.explore(&mut solver, |_env| {
            calls += 1;
        });
        assert_eq!(outcome.paths.len(), 1);
        assert_eq!(calls, 1);
        assert!(outcome.paths[0].path.is_empty());
    }

    #[test]
    fn max_paths_truncates() {
        let mut solver = Solver::new();
        let a = solver.fresh_var(Domain::new([0, 1]));
        let b = solver.fresh_var(Domain::new([0, 1]));
        let c = solver.fresh_var(Domain::new([0, 1]));
        let explorer = PathExplorer::new(ExploreConfig {
            max_paths: 3,
            ..Default::default()
        });
        let outcome = explorer.explore(&mut solver, |env| {
            // 8 feasible paths.
            env.branch(&SymValue::var(a).eq_const(1));
            env.branch(&SymValue::var(b).eq_const(1));
            env.branch(&SymValue::var(c).eq_const(1));
        });
        assert_eq!(outcome.paths.len(), 3);
        assert!(outcome.truncated);
    }

    #[test]
    fn representative_inputs_cover_both_sides_of_a_branch() {
        let mut solver = Solver::new();
        let v = solver.fresh_var(Domain::new([7, 9]));
        let explorer = PathExplorer::default();
        let outcome = explorer.explore(&mut solver, |env| {
            env.branch(&SymValue::var(v).eq_const(9));
        });
        let inputs: BTreeSet<u64> = outcome
            .representative_inputs()
            .map(|a| a.get(v).unwrap())
            .collect();
        assert_eq!(inputs, BTreeSet::from([7, 9]));
    }

    #[test]
    fn equality_between_two_symbolic_fields_is_explored() {
        // Mirrors the mactable overlay case: a branch comparing two symbolic
        // packet fields (src == dst) must yield both equal and distinct
        // representatives.
        let mut solver = Solver::new();
        let src = solver.fresh_var(Domain::new([2, 3]));
        let dst = solver.fresh_var(Domain::new([2, 3]));
        let explorer = PathExplorer::default();
        let outcome = explorer.explore(&mut solver, |env| {
            let eq = SymValue::var(src).eq(&SymValue::var(dst));
            env.branch(&eq);
        });
        assert_eq!(outcome.paths.len(), 2);
        let mut saw_equal = false;
        let mut saw_distinct = false;
        for a in outcome.representative_inputs() {
            if a.get(src) == a.get(dst) {
                saw_equal = true;
            } else {
                saw_distinct = true;
            }
        }
        assert!(saw_equal && saw_distinct);
    }
}
