//! Symbolic expression and constraint ASTs.
//!
//! Expressions are integer-valued (all modelled header fields fit in a
//! `u64`); constraints are boolean formulas over them. Expressions carry no
//! interior mutability and are freely cloneable, so paths and constraints can
//! be stored, negated and replayed.

use std::collections::BTreeSet;
use std::fmt;

/// Identifies one symbolic variable (e.g. "the destination MAC address of
/// the packet being discovered for client 1").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(pub u32);

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// The finite candidate domain of a symbolic variable.
///
/// This encodes the paper's "domain knowledge" optimisation (Section 3.2):
/// header fields are constrained to the addresses that exist in the modelled
/// topology, plus a designated *fresh* value representing "any address not
/// known to the system" so that unknown-destination code paths stay
/// reachable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Domain {
    candidates: Vec<u64>,
}

impl Domain {
    /// Creates a domain from candidate values (deduplicated, order
    /// preserved — the first candidate is the default concrete seed used by
    /// the concolic engine).
    pub fn new(candidates: impl IntoIterator<Item = u64>) -> Self {
        let mut seen = BTreeSet::new();
        let mut out = Vec::new();
        for c in candidates {
            if seen.insert(c) {
                out.push(c);
            }
        }
        assert!(
            !out.is_empty(),
            "a symbolic variable needs at least one candidate value"
        );
        Domain { candidates: out }
    }

    /// A single-value (effectively concrete) domain.
    pub fn singleton(v: u64) -> Self {
        Domain::new([v])
    }

    /// The candidate values.
    pub fn candidates(&self) -> &[u64] {
        &self.candidates
    }

    /// The default seed value for the concolic engine.
    pub fn seed(&self) -> u64 {
        self.candidates[0]
    }

    /// Number of candidates.
    pub fn len(&self) -> usize {
        self.candidates.len()
    }

    /// True if only one candidate exists.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// True if `v` is a member of the domain.
    pub fn contains(&self, v: u64) -> bool {
        self.candidates.contains(&v)
    }
}

/// An integer-valued symbolic expression.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Expr {
    /// A symbolic variable.
    Var(VarId),
    /// A constant.
    Const(u64),
    /// Bitwise AND.
    And(Box<Expr>, Box<Expr>),
    /// Bitwise OR.
    Or(Box<Expr>, Box<Expr>),
    /// Bitwise XOR.
    Xor(Box<Expr>, Box<Expr>),
    /// Addition (wrapping).
    Add(Box<Expr>, Box<Expr>),
    /// Subtraction (wrapping).
    Sub(Box<Expr>, Box<Expr>),
    /// Logical shift right by a constant.
    Shr(Box<Expr>, u32),
    /// Logical shift left by a constant.
    Shl(Box<Expr>, u32),
}

impl Expr {
    /// Evaluates the expression under `lookup`, which resolves variables.
    /// Returns `None` if any referenced variable is unresolved.
    pub fn eval_with(&self, lookup: &dyn Fn(VarId) -> Option<u64>) -> Option<u64> {
        match self {
            Expr::Var(v) => lookup(*v),
            Expr::Const(c) => Some(*c),
            Expr::And(a, b) => Some(a.eval_with(lookup)? & b.eval_with(lookup)?),
            Expr::Or(a, b) => Some(a.eval_with(lookup)? | b.eval_with(lookup)?),
            Expr::Xor(a, b) => Some(a.eval_with(lookup)? ^ b.eval_with(lookup)?),
            Expr::Add(a, b) => Some(a.eval_with(lookup)?.wrapping_add(b.eval_with(lookup)?)),
            Expr::Sub(a, b) => Some(a.eval_with(lookup)?.wrapping_sub(b.eval_with(lookup)?)),
            Expr::Shr(a, n) => Some(a.eval_with(lookup)?.checked_shr(*n).unwrap_or(0)),
            Expr::Shl(a, n) => Some(a.eval_with(lookup)?.checked_shl(*n).unwrap_or(0)),
        }
    }

    /// Collects the variables referenced by this expression into `out`.
    pub fn collect_vars(&self, out: &mut VarSet) {
        match self {
            Expr::Var(v) => {
                out.insert(*v);
            }
            Expr::Const(_) => {}
            Expr::And(a, b)
            | Expr::Or(a, b)
            | Expr::Xor(a, b)
            | Expr::Add(a, b)
            | Expr::Sub(a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
            Expr::Shr(a, _) | Expr::Shl(a, _) => a.collect_vars(out),
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Var(v) => write!(f, "{v}"),
            Expr::Const(c) => write!(f, "{c:#x}"),
            Expr::And(a, b) => write!(f, "({a} & {b})"),
            Expr::Or(a, b) => write!(f, "({a} | {b})"),
            Expr::Xor(a, b) => write!(f, "({a} ^ {b})"),
            Expr::Add(a, b) => write!(f, "({a} + {b})"),
            Expr::Sub(a, b) => write!(f, "({a} - {b})"),
            Expr::Shr(a, n) => write!(f, "({a} >> {n})"),
            Expr::Shl(a, n) => write!(f, "({a} << {n})"),
        }
    }
}

/// A boolean constraint over symbolic expressions.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum BoolExpr {
    /// Always true.
    True,
    /// Always false.
    False,
    /// Equality.
    Eq(Expr, Expr),
    /// Inequality.
    Ne(Expr, Expr),
    /// Unsigned less-than.
    Lt(Expr, Expr),
    /// Unsigned less-or-equal.
    Le(Expr, Expr),
    /// Conjunction.
    And(Box<BoolExpr>, Box<BoolExpr>),
    /// Disjunction.
    Or(Box<BoolExpr>, Box<BoolExpr>),
    /// Negation.
    Not(Box<BoolExpr>),
}

impl BoolExpr {
    /// The negated constraint (kept shallow: `Not` nodes cancel).
    pub fn negate(&self) -> BoolExpr {
        match self {
            BoolExpr::True => BoolExpr::False,
            BoolExpr::False => BoolExpr::True,
            BoolExpr::Eq(a, b) => BoolExpr::Ne(a.clone(), b.clone()),
            BoolExpr::Ne(a, b) => BoolExpr::Eq(a.clone(), b.clone()),
            BoolExpr::Not(inner) => (**inner).clone(),
            other => BoolExpr::Not(Box::new(other.clone())),
        }
    }

    /// Evaluates the constraint under `lookup`. Returns `None` if a
    /// referenced variable is unresolved (used for constraint propagation
    /// with partial assignments).
    pub fn eval_with(&self, lookup: &dyn Fn(VarId) -> Option<u64>) -> Option<bool> {
        match self {
            BoolExpr::True => Some(true),
            BoolExpr::False => Some(false),
            BoolExpr::Eq(a, b) => Some(a.eval_with(lookup)? == b.eval_with(lookup)?),
            BoolExpr::Ne(a, b) => Some(a.eval_with(lookup)? != b.eval_with(lookup)?),
            BoolExpr::Lt(a, b) => Some(a.eval_with(lookup)? < b.eval_with(lookup)?),
            BoolExpr::Le(a, b) => Some(a.eval_with(lookup)? <= b.eval_with(lookup)?),
            BoolExpr::And(a, b) => {
                // Short-circuit where possible even with partial assignments.
                match (a.eval_with(lookup), b.eval_with(lookup)) {
                    (Some(false), _) | (_, Some(false)) => Some(false),
                    (Some(true), Some(true)) => Some(true),
                    _ => None,
                }
            }
            BoolExpr::Or(a, b) => match (a.eval_with(lookup), b.eval_with(lookup)) {
                (Some(true), _) | (_, Some(true)) => Some(true),
                (Some(false), Some(false)) => Some(false),
                _ => None,
            },
            BoolExpr::Not(inner) => inner.eval_with(lookup).map(|b| !b),
        }
    }

    /// Collects the variables referenced by this constraint.
    pub fn collect_vars(&self, out: &mut VarSet) {
        match self {
            BoolExpr::True | BoolExpr::False => {}
            BoolExpr::Eq(a, b) | BoolExpr::Ne(a, b) | BoolExpr::Lt(a, b) | BoolExpr::Le(a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
            BoolExpr::And(a, b) | BoolExpr::Or(a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
            BoolExpr::Not(inner) => inner.collect_vars(out),
        }
    }
}

impl fmt::Display for BoolExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BoolExpr::True => write!(f, "true"),
            BoolExpr::False => write!(f, "false"),
            BoolExpr::Eq(a, b) => write!(f, "{a} == {b}"),
            BoolExpr::Ne(a, b) => write!(f, "{a} != {b}"),
            BoolExpr::Lt(a, b) => write!(f, "{a} < {b}"),
            BoolExpr::Le(a, b) => write!(f, "{a} <= {b}"),
            BoolExpr::And(a, b) => write!(f, "({a}) && ({b})"),
            BoolExpr::Or(a, b) => write!(f, "({a}) || ({b})"),
            BoolExpr::Not(inner) => write!(f, "!({inner})"),
        }
    }
}

/// A set of variable ids.
pub type VarSet = BTreeSet<VarId>;

#[cfg(test)]
mod tests {
    use super::*;

    fn lookup_none(_: VarId) -> Option<u64> {
        None
    }

    #[test]
    fn domain_dedups_and_keeps_order() {
        let d = Domain::new([5, 3, 5, 7, 3]);
        assert_eq!(d.candidates(), &[5, 3, 7]);
        assert_eq!(d.seed(), 5);
        assert_eq!(d.len(), 3);
        assert!(d.contains(7));
        assert!(!d.contains(9));
    }

    #[test]
    #[should_panic(expected = "at least one candidate")]
    fn empty_domain_rejected() {
        Domain::new([]);
    }

    #[test]
    fn expr_eval_constants() {
        let e = Expr::Add(Box::new(Expr::Const(40)), Box::new(Expr::Const(2)));
        assert_eq!(e.eval_with(&lookup_none), Some(42));
        let e = Expr::And(Box::new(Expr::Const(0xff)), Box::new(Expr::Const(0x0f)));
        assert_eq!(e.eval_with(&lookup_none), Some(0x0f));
        let e = Expr::Shr(Box::new(Expr::Const(0x100)), 8);
        assert_eq!(e.eval_with(&lookup_none), Some(1));
        let e = Expr::Shl(Box::new(Expr::Const(1)), 4);
        assert_eq!(e.eval_with(&lookup_none), Some(16));
    }

    #[test]
    fn expr_eval_with_vars() {
        let lookup = |v: VarId| if v == VarId(1) { Some(10u64) } else { None };
        let e = Expr::Add(Box::new(Expr::Var(VarId(1))), Box::new(Expr::Const(1)));
        assert_eq!(e.eval_with(&lookup), Some(11));
        let e = Expr::Add(Box::new(Expr::Var(VarId(2))), Box::new(Expr::Const(1)));
        assert_eq!(e.eval_with(&lookup), None);
    }

    #[test]
    fn bool_eval_and_negate() {
        let a = BoolExpr::Eq(Expr::Const(1), Expr::Const(1));
        assert_eq!(a.eval_with(&lookup_none), Some(true));
        assert_eq!(a.negate().eval_with(&lookup_none), Some(false));
        let lt = BoolExpr::Lt(Expr::Const(1), Expr::Const(2));
        assert_eq!(lt.eval_with(&lookup_none), Some(true));
        assert_eq!(lt.negate().eval_with(&lookup_none), Some(false));
        // Double negation cancels structurally.
        let nn = lt.negate().negate();
        assert_eq!(nn, lt);
    }

    #[test]
    fn bool_short_circuit_with_partial_assignment() {
        let unknown = BoolExpr::Eq(Expr::Var(VarId(9)), Expr::Const(1));
        let f = BoolExpr::And(Box::new(BoolExpr::False), Box::new(unknown.clone()));
        assert_eq!(f.eval_with(&lookup_none), Some(false));
        let t = BoolExpr::Or(Box::new(BoolExpr::True), Box::new(unknown.clone()));
        assert_eq!(t.eval_with(&lookup_none), Some(true));
        let u = BoolExpr::And(Box::new(BoolExpr::True), Box::new(unknown));
        assert_eq!(u.eval_with(&lookup_none), None);
    }

    #[test]
    fn collect_vars_finds_all() {
        let e = BoolExpr::And(
            Box::new(BoolExpr::Eq(Expr::Var(VarId(1)), Expr::Const(0))),
            Box::new(BoolExpr::Lt(
                Expr::Add(Box::new(Expr::Var(VarId(2))), Box::new(Expr::Var(VarId(3)))),
                Expr::Const(10),
            )),
        );
        let mut vars = VarSet::new();
        e.collect_vars(&mut vars);
        assert_eq!(
            vars.into_iter().collect::<Vec<_>>(),
            vec![VarId(1), VarId(2), VarId(3)]
        );
    }

    #[test]
    fn display_is_readable() {
        let e = BoolExpr::Eq(
            Expr::And(Box::new(Expr::Var(VarId(0))), Box::new(Expr::Const(1))),
            Expr::Const(0),
        );
        assert_eq!(e.to_string(), "(v0 & 0x1) == 0x0");
    }
}
