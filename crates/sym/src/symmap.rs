//! The symbolic dictionary stub.
//!
//! Section 6, transformation (iv): NICE substitutes Python's built-in
//! dictionary "with a special stub that exposes the constraints". Controller
//! applications keep their state in dictionaries keyed by packet header
//! fields (the MAC-learning table of Figure 3, the flow table of the load
//! balancer); when such a dictionary is indexed with a *symbolic* key, the
//! lookup itself becomes a source of path constraints — the key may alias
//! any existing entry, or none of them.
//!
//! [`SymMap`] is that stub. Under concrete execution (model checking) it
//! behaves exactly like a `BTreeMap<u64, V>` and costs no branching. Under
//! concolic execution, a symbolic key is compared against the existing keys
//! through [`Env::branch`], so the explorer automatically discovers the
//! equivalence classes "key aliases entry k" and "key is absent".

use crate::env::Env;
use crate::value::SymValue;
use nice_openflow::{Fingerprint, Fnv64};
use std::collections::BTreeMap;

/// A map keyed by (possibly symbolic) integers.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SymMap<V> {
    /// Entries inserted with concrete keys.
    base: BTreeMap<u64, V>,
    /// Entries inserted with symbolic keys during a concolic run. The model
    /// checker never populates this (its packets are concrete); the overlay
    /// lives only for the duration of one symbolic handler execution on a
    /// throw-away clone of the controller state.
    overlay: Vec<(SymValue, V)>,
}

impl<V: Clone> SymMap<V> {
    /// Creates an empty map.
    pub fn new() -> Self {
        SymMap {
            base: BTreeMap::new(),
            overlay: Vec::new(),
        }
    }

    /// Number of concrete entries.
    pub fn len(&self) -> usize {
        self.base.len()
    }

    /// True if the map holds no concrete entries.
    pub fn is_empty(&self) -> bool {
        self.base.is_empty()
    }

    /// True if any entries were inserted under symbolic keys (only possible
    /// during concolic execution).
    pub fn has_symbolic_entries(&self) -> bool {
        !self.overlay.is_empty()
    }

    /// Inserts a value under a possibly-symbolic key.
    pub fn insert(&mut self, key: SymValue, value: V) {
        match key.as_concrete() {
            Some(k) => {
                self.base.insert(k, value);
            }
            None => self.overlay.push((key, value)),
        }
    }

    /// Inserts under a concrete key.
    pub fn insert_concrete(&mut self, key: u64, value: V) {
        self.base.insert(key, value);
    }

    /// Looks up a value. With a symbolic key the lookup branches (through
    /// `env`) over aliasing with the most recent symbolic insertions first,
    /// then each concrete entry, then "absent".
    pub fn get(&self, key: &SymValue, env: &mut dyn Env) -> Option<V> {
        // Newest symbolic insertions shadow older entries, like overwriting a
        // dict slot would.
        for (k, v) in self.overlay.iter().rev() {
            if env.branch(&key.eq(k)) {
                return Some(v.clone());
            }
        }
        if let Some(kc) = key.as_concrete() {
            return self.base.get(&kc).cloned();
        }
        for (k, v) in self.base.iter() {
            if env.branch(&key.eq(&SymValue::concrete(*k))) {
                return Some(v.clone());
            }
        }
        None
    }

    /// `has_key` in the pseudo-code of Figure 3.
    pub fn contains_key(&self, key: &SymValue, env: &mut dyn Env) -> bool {
        self.get(key, env).is_some()
    }

    /// Direct concrete lookup (no branching).
    pub fn get_concrete(&self, key: u64) -> Option<&V> {
        self.base.get(&key)
    }

    /// Removes a concrete entry.
    pub fn remove_concrete(&mut self, key: u64) -> Option<V> {
        self.base.remove(&key)
    }

    /// Iterates over concrete entries in key order.
    pub fn iter_concrete(&self) -> impl Iterator<Item = (u64, &V)> {
        self.base.iter().map(|(&k, v)| (k, v))
    }

    /// Concrete keys in order.
    pub fn concrete_keys(&self) -> Vec<u64> {
        self.base.keys().copied().collect()
    }

    /// Clears all entries.
    pub fn clear(&mut self) {
        self.base.clear();
        self.overlay.clear();
    }
}

impl<V: Fingerprint> Fingerprint for SymMap<V> {
    fn fingerprint(&self, hasher: &mut Fnv64) {
        debug_assert!(
            self.overlay.is_empty(),
            "symbolic overlay entries must not leak into model-checker state"
        );
        hasher.write_usize(self.base.len());
        for (k, v) in &self.base {
            hasher.write_u64(*k);
            v.fingerprint(hasher);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::{ConcreteEnv, SymExecEnv};
    use crate::explore::{ExploreConfig, PathExplorer};
    use crate::expr::Domain;
    use crate::solver::{Assignment, Solver};
    use nice_openflow::fingerprint_of;

    #[test]
    fn concrete_behaviour_matches_a_plain_map() {
        let mut env = ConcreteEnv::new();
        let mut m: SymMap<u32> = SymMap::new();
        assert!(m.is_empty());
        m.insert(SymValue::concrete(5), 50);
        m.insert_concrete(6, 60);
        assert_eq!(m.len(), 2);
        assert_eq!(m.get(&SymValue::concrete(5), &mut env), Some(50));
        assert_eq!(m.get(&SymValue::concrete(7), &mut env), None);
        assert!(m.contains_key(&SymValue::concrete(6), &mut env));
        assert_eq!(m.get_concrete(6), Some(&60));
        assert_eq!(m.concrete_keys(), vec![5, 6]);
        assert_eq!(m.remove_concrete(5), Some(50));
        assert_eq!(m.remove_concrete(5), None);
        m.clear();
        assert!(m.is_empty());
    }

    #[test]
    fn insert_overwrites_concrete_key() {
        let mut env = ConcreteEnv::new();
        let mut m: SymMap<u32> = SymMap::new();
        m.insert(SymValue::concrete(1), 10);
        m.insert(SymValue::concrete(1), 11);
        assert_eq!(m.len(), 1);
        assert_eq!(m.get(&SymValue::concrete(1), &mut env), Some(11));
    }

    #[test]
    fn symbolic_key_lookup_branches_over_existing_entries() {
        // Two concrete entries; a symbolic key over a domain that includes
        // both keys and an absent value yields three equivalence classes.
        let mut solver = Solver::new();
        let key_var = solver.fresh_var(Domain::new([10, 20, 99]));

        let mut m: SymMap<u32> = SymMap::new();
        m.insert_concrete(10, 1);
        m.insert_concrete(20, 2);

        let explorer = PathExplorer::new(ExploreConfig::default());
        let mut observed: Vec<(u64, Option<u32>)> = Vec::new();
        let outcome = explorer.explore(&mut solver, |env| {
            let key = SymValue::var(key_var);
            let result = m.get(&key, env);
            let concrete_key = env.concretize(&key);
            observed.push((concrete_key, result));
        });
        assert_eq!(outcome.paths.len(), 3);
        // Dedupe by key to inspect what each class saw.
        observed.sort();
        observed.dedup();
        assert!(observed.contains(&(10, Some(1))));
        assert!(observed.contains(&(20, Some(2))));
        assert!(observed.contains(&(99, None)));
    }

    #[test]
    fn symbolic_insert_then_lookup_aliases() {
        // mactable[pkt.src] = port; mactable.has_key(pkt.dst) — the lookup
        // must branch over pkt.dst == pkt.src.
        let mut solver = Solver::new();
        let src = solver.fresh_var(Domain::new([1, 2]));
        let dst = solver.fresh_var(Domain::new([1, 2]));
        let explorer = PathExplorer::default();
        let mut class_count = 0;
        let outcome = explorer.explore(&mut solver, |env| {
            let mut m: SymMap<u32> = SymMap::new();
            m.insert(SymValue::var(src), 7);
            assert!(m.has_symbolic_entries());
            if m.contains_key(&SymValue::var(dst), env) {
                class_count += 1;
            }
        });
        assert_eq!(outcome.paths.len(), 2, "alias and no-alias classes");
    }

    #[test]
    fn symbolic_env_concrete_key_fast_path() {
        let mut m: SymMap<u32> = SymMap::new();
        m.insert_concrete(4, 44);
        let mut env = SymExecEnv::new(Assignment::new());
        // Concrete key under a symbolic env must not record constraints.
        assert_eq!(m.get(&SymValue::concrete(4), &mut env), Some(44));
        assert_eq!(env.branch_count(), 0);
    }

    #[test]
    fn fingerprint_tracks_concrete_contents() {
        let mut a: SymMap<u32> = SymMap::new();
        let mut b: SymMap<u32> = SymMap::new();
        assert_eq!(fingerprint_of(&a), fingerprint_of(&b));
        a.insert_concrete(1, 5);
        assert_ne!(fingerprint_of(&a), fingerprint_of(&b));
        b.insert_concrete(1, 5);
        assert_eq!(fingerprint_of(&a), fingerprint_of(&b));
    }
}
