//! Execution environments: the oracle that controller handlers branch
//! through.
//!
//! Handlers never branch directly on symbolic data. Instead they evaluate a
//! comparison to a [`SymBool`] and call [`Env::branch`] — the equivalent of
//! the branch instrumentation NICE injects into the Python AST (Section 6,
//! transformation (iii): "we instrument branches to inform the concolic
//! engine on which branch is taken").
//!
//! * Under [`ConcreteEnv`] every value is concrete, the branch simply
//!   evaluates, and the cost is a single enum match — this is what the model
//!   checker uses on every transition.
//! * Under [`SymExecEnv`] the branch outcome is determined by the current
//!   concrete input (concolic execution runs the code on concrete inputs) and
//!   the symbolic condition is appended to the path constraint so the
//!   explorer can later negate it.

use crate::expr::BoolExpr;
use crate::solver::Assignment;
use crate::value::{SymBool, SymValue};
use nice_openflow::Fnv64;

/// The branch/concretisation oracle handlers execute against.
pub trait Env {
    /// Decides a branch whose condition may be symbolic.
    fn branch(&mut self, cond: &SymBool) -> bool;

    /// Resolves a possibly-symbolic value to a concrete integer (under the
    /// current concrete input when executing symbolically).
    fn concretize(&mut self, value: &SymValue) -> u64;

    /// True when running under the concolic engine.
    fn is_symbolic(&self) -> bool {
        false
    }

    /// Convenience: branch on the negation of `cond`.
    fn branch_not(&mut self, cond: &SymBool) -> bool {
        self.branch(&cond.not())
    }
}

/// The concrete environment used during model checking: all data is concrete
/// and symbolic conditions are a logic error.
#[derive(Debug, Clone, Copy, Default)]
pub struct ConcreteEnv;

impl ConcreteEnv {
    /// Creates a concrete environment.
    pub fn new() -> Self {
        ConcreteEnv
    }
}

impl Env for ConcreteEnv {
    fn branch(&mut self, cond: &SymBool) -> bool {
        cond.as_concrete()
            .expect("symbolic condition reached concrete execution; was a symbolic packet injected into the model checker?")
    }

    fn concretize(&mut self, value: &SymValue) -> u64 {
        value
            .as_concrete()
            .expect("symbolic value reached concrete execution; was a symbolic packet injected into the model checker?")
    }
}

/// The concolic environment: runs the handler on a concrete input while
/// recording the symbolic path constraint.
#[derive(Debug, Clone)]
pub struct SymExecEnv {
    assignment: Assignment,
    path: Vec<(BoolExpr, bool)>,
}

impl SymExecEnv {
    /// Creates an environment executing under the given concrete input.
    pub fn new(assignment: Assignment) -> Self {
        SymExecEnv {
            assignment,
            path: Vec::new(),
        }
    }

    /// The concrete input driving this execution.
    pub fn assignment(&self) -> &Assignment {
        &self.assignment
    }

    /// The recorded path: each symbolic branch condition together with the
    /// direction taken.
    pub fn path(&self) -> &[(BoolExpr, bool)] {
        &self.path
    }

    /// The path as a list of constraints that all held on this execution
    /// (taken branches stay as-is, not-taken branches are negated).
    pub fn taken_constraints(&self) -> Vec<BoolExpr> {
        self.path
            .iter()
            .map(|(c, taken)| if *taken { c.clone() } else { c.negate() })
            .collect()
    }

    /// A stable fingerprint of the path, used to recognise when two inputs
    /// exercise the same equivalence class.
    pub fn path_signature(&self) -> u64 {
        let mut h = Fnv64::with_seed(0x5e_c0);
        h.write_usize(self.path.len());
        for (c, taken) in &self.path {
            h.write_str(&c.to_string());
            h.write_bool(*taken);
        }
        h.finish()
    }

    /// Number of symbolic branches encountered.
    pub fn branch_count(&self) -> usize {
        self.path.len()
    }
}

impl Env for SymExecEnv {
    fn branch(&mut self, cond: &SymBool) -> bool {
        match cond {
            SymBool::Concrete(b) => *b,
            SymBool::Symbolic(expr) => {
                let outcome = self.assignment.eval(expr).expect(
                    "path condition references a variable outside the declared symbolic inputs",
                );
                self.path.push((expr.clone(), outcome));
                outcome
            }
        }
    }

    fn concretize(&mut self, value: &SymValue) -> u64 {
        match value {
            SymValue::Concrete(v) => *v,
            SymValue::Symbolic(expr) => expr.eval_with(&|v| self.assignment.get(v)).expect(
                "symbolic value references a variable outside the declared symbolic inputs",
            ),
        }
    }

    fn is_symbolic(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{Domain, Expr, VarId};
    use crate::solver::Solver;

    #[test]
    fn concrete_env_evaluates() {
        let mut env = ConcreteEnv::new();
        assert!(env.branch(&SymBool::concrete(true)));
        assert!(!env.branch(&SymBool::concrete(false)));
        assert!(env.branch_not(&SymBool::concrete(false)));
        assert_eq!(env.concretize(&SymValue::concrete(42)), 42);
        assert!(!env.is_symbolic());
    }

    #[test]
    #[should_panic(expected = "symbolic condition reached concrete execution")]
    fn concrete_env_rejects_symbolic_conditions() {
        let mut env = ConcreteEnv::new();
        env.branch(&SymBool::Symbolic(BoolExpr::Eq(
            Expr::Var(VarId(0)),
            Expr::Const(1),
        )));
    }

    #[test]
    fn sym_env_records_path() {
        let mut solver = Solver::new();
        let v = solver.fresh_var(Domain::new([0, 1]));
        let mut env = SymExecEnv::new(solver.seed_assignment());
        let x = SymValue::var(v);
        // Seed value is 0, so the first branch is false and the second true.
        assert!(!env.branch(&x.eq_const(1)));
        assert!(env.branch(&x.eq_const(0)));
        // Concrete conditions are not recorded.
        assert!(env.branch(&SymBool::concrete(true)));
        assert_eq!(env.branch_count(), 2);
        assert!(!env.path()[0].1);
        assert!(env.path()[1].1);
        let constraints = env.taken_constraints();
        // Not-taken branch is negated: v != 1, and taken branch kept: v == 0.
        assert_eq!(constraints[0], BoolExpr::Ne(Expr::Var(v), Expr::Const(1)));
        assert_eq!(constraints[1], BoolExpr::Eq(Expr::Var(v), Expr::Const(0)));
        assert!(env.is_symbolic());
        assert_eq!(env.concretize(&x), 0);
        assert_eq!(env.assignment().get(v), Some(0));
    }

    #[test]
    fn path_signature_distinguishes_paths() {
        let mut solver = Solver::new();
        let v = solver.fresh_var(Domain::new([0, 1]));
        let x = SymValue::var(v);

        let mut env_a = SymExecEnv::new(Assignment::from_pairs([(v, 0)]));
        env_a.branch(&x.eq_const(0));
        let mut env_b = SymExecEnv::new(Assignment::from_pairs([(v, 1)]));
        env_b.branch(&x.eq_const(0));
        assert_ne!(env_a.path_signature(), env_b.path_signature());

        // Same decisions → same signature.
        let mut env_c = SymExecEnv::new(Assignment::from_pairs([(v, 0)]));
        env_c.branch(&x.eq_const(0));
        assert_eq!(env_a.path_signature(), env_c.path_signature());
    }

    #[test]
    fn concretize_evaluates_expressions() {
        let mut solver = Solver::new();
        let v = solver.fresh_var(Domain::new([6]));
        let mut env = SymExecEnv::new(solver.seed_assignment());
        let x = SymValue::var(v).add(&SymValue::concrete(1));
        assert_eq!(env.concretize(&x), 7);
    }
}
