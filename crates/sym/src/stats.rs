//! Symbolic traffic statistics.
//!
//! The `discover_stats` transition of Figure 5 symbolically executes the
//! controller's statistics handler "with symbolic integers as arguments", so
//! that every feasible path of the handler (e.g. the load threshold
//! comparison in the energy-aware traffic-engineering application) is
//! exercised by a representative statistics reply.

use crate::expr::{Domain, VarId};
use crate::solver::{Assignment, Solver};
use crate::value::SymValue;
use nice_openflow::{PortId, PortStatsEntry};

/// Candidate values for symbolic byte counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatsDomains {
    /// Candidate total-byte levels per port. The defaults straddle a typical
    /// utilisation threshold so both the "low load" and "high load" branches
    /// of a statistics handler are reachable.
    pub byte_levels: Vec<u64>,
}

impl Default for StatsDomains {
    fn default() -> Self {
        StatsDomains {
            byte_levels: vec![0, 1_000, 1_000_000],
        }
    }
}

impl StatsDomains {
    /// Builds domains that straddle the given threshold: one value well
    /// below, one just below, one just above.
    pub fn around_threshold(threshold: u64) -> Self {
        StatsDomains {
            byte_levels: vec![0, threshold.saturating_sub(1), threshold.saturating_add(1)],
        }
    }
}

/// Per-port statistics whose byte counters may be symbolic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SymStats {
    ports: Vec<PortId>,
    tx_bytes: Vec<SymValue>,
    vars: Vec<Option<VarId>>,
}

impl SymStats {
    /// Lifts concrete statistics (used by the model checker when delivering a
    /// real stats reply to the handler).
    pub fn from_concrete(entries: &[PortStatsEntry]) -> Self {
        SymStats {
            ports: entries.iter().map(|e| e.port).collect(),
            tx_bytes: entries
                .iter()
                .map(|e| SymValue::concrete(e.total_bytes()))
                .collect(),
            vars: vec![None; entries.len()],
        }
    }

    /// Declares symbolic statistics for the given ports.
    pub fn symbolic(solver: &mut Solver, ports: &[PortId], domains: &StatsDomains) -> Self {
        let mut tx_bytes = Vec::with_capacity(ports.len());
        let mut vars = Vec::with_capacity(ports.len());
        for _ in ports {
            let var = solver.fresh_var(Domain::new(domains.byte_levels.iter().copied()));
            tx_bytes.push(SymValue::var(var));
            vars.push(Some(var));
        }
        SymStats {
            ports: ports.to_vec(),
            tx_bytes,
            vars,
        }
    }

    /// The ports covered by this reply.
    pub fn ports(&self) -> &[PortId] {
        &self.ports
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.ports.len()
    }

    /// True if the reply has no entries.
    pub fn is_empty(&self) -> bool {
        self.ports.is_empty()
    }

    /// The (possibly symbolic) total byte counter of the `i`-th entry.
    pub fn total_bytes(&self, i: usize) -> &SymValue {
        &self.tx_bytes[i]
    }

    /// The (possibly symbolic) total byte counter for a port.
    pub fn total_bytes_for(&self, port: PortId) -> Option<&SymValue> {
        self.ports
            .iter()
            .position(|&p| p == port)
            .map(|i| &self.tx_bytes[i])
    }

    /// The maximum byte counter across all entries (symbolic max built from
    /// pairwise comparisons is left to the handler; this helper is only valid
    /// on concrete stats).
    pub fn concrete_max_bytes(&self) -> Option<u64> {
        self.tx_bytes
            .iter()
            .map(|v| v.as_concrete())
            .collect::<Option<Vec<_>>>()
            .map(|v| v.into_iter().max().unwrap_or(0))
    }

    /// Reconstructs concrete statistics from a solver model.
    pub fn concretize(&self, assignment: &Assignment) -> Vec<PortStatsEntry> {
        self.ports
            .iter()
            .zip(&self.tx_bytes)
            .map(|(&port, bytes)| {
                let total = match bytes.as_concrete() {
                    Some(v) => v,
                    None => bytes
                        .to_expr()
                        .eval_with(&|v| assignment.get(v))
                        .expect("model must cover statistics variables"),
                };
                PortStatsEntry {
                    port,
                    rx_packets: 0,
                    tx_packets: 0,
                    rx_bytes: 0,
                    tx_bytes: total,
                }
            })
            .collect()
    }

    /// True if any counter is symbolic.
    pub fn is_symbolic(&self) -> bool {
        self.vars.iter().any(|v| v.is_some())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::Env;
    use crate::explore::PathExplorer;

    #[test]
    fn concrete_lift_keeps_totals() {
        let entries = vec![
            PortStatsEntry {
                port: PortId(1),
                rx_bytes: 10,
                tx_bytes: 5,
                rx_packets: 0,
                tx_packets: 0,
            },
            PortStatsEntry {
                port: PortId(2),
                rx_bytes: 0,
                tx_bytes: 100,
                rx_packets: 0,
                tx_packets: 0,
            },
        ];
        let stats = SymStats::from_concrete(&entries);
        assert_eq!(stats.len(), 2);
        assert!(!stats.is_symbolic());
        assert_eq!(stats.total_bytes(0).as_concrete(), Some(15));
        assert_eq!(
            stats.total_bytes_for(PortId(2)).unwrap().as_concrete(),
            Some(100)
        );
        assert!(stats.total_bytes_for(PortId(9)).is_none());
        assert_eq!(stats.concrete_max_bytes(), Some(100));
    }

    #[test]
    fn stats_domains_straddle_threshold() {
        let d = StatsDomains::around_threshold(500);
        assert_eq!(d.byte_levels, vec![0, 499, 501]);
    }

    #[test]
    fn symbolic_stats_explore_threshold_branches() {
        let mut solver = Solver::new();
        let domains = StatsDomains::around_threshold(1_000);
        let stats = SymStats::symbolic(&mut solver, &[PortId(1)], &domains);
        assert!(stats.is_symbolic());
        assert!(!stats.is_empty());

        let explorer = PathExplorer::default();
        let outcome = explorer.explore(&mut solver, |env| {
            let load = stats.total_bytes(0);
            // A handler branching on load > threshold.
            env.branch(&SymValue::concrete(1_000).lt(load));
        });
        assert_eq!(outcome.paths.len(), 2, "high-load and low-load classes");

        // Each representative concretises to statistics on the expected side
        // of the threshold.
        let mut highs = 0;
        let mut lows = 0;
        for a in outcome.representative_inputs() {
            let concrete = stats.concretize(a);
            if concrete[0].total_bytes() > 1_000 {
                highs += 1;
            } else {
                lows += 1;
            }
        }
        assert_eq!((highs, lows), (1, 1));
    }

    #[test]
    fn concretize_on_concrete_stats_is_identity() {
        let entries = vec![PortStatsEntry {
            port: PortId(3),
            rx_bytes: 1,
            tx_bytes: 2,
            rx_packets: 0,
            tx_packets: 0,
        }];
        let stats = SymStats::from_concrete(&entries);
        let out = stats.concretize(&Assignment::new());
        assert_eq!(out[0].port, PortId(3));
        assert_eq!(out[0].total_bytes(), 3);
    }
}
