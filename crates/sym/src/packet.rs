//! Symbolic packets.
//!
//! Section 3.2: *"a symbolic packet is a group of symbolic integer variables
//! that each represents a header field"*, kept as individual lazily-created
//! variables (rather than an array of symbolic bytes) to keep the solver
//! load low, with byte- and bit-level access still available, and with the
//! candidate values constrained by domain knowledge taken from the input
//! topology.
//!
//! A [`SymPacket`] can be built from a concrete [`Packet`] (all fields
//! concrete — what the model checker passes to handlers) or declared fully
//! symbolic against a [`Solver`] (what `discover_packets` passes). The
//! [`SymPacketVars`] handle maps a solver model back to a concrete [`Packet`].

use crate::expr::Domain;
use crate::solver::{Assignment, Solver};
use crate::value::{SymBool, SymValue};
use nice_openflow::{EthType, IpProto, MacAddr, NwAddr, Packet, PacketId, TcpFlags, Topology};

/// Candidate values for each symbolic header field, derived from the
/// topology (the paper's "domain knowledge") plus designated fresh values so
/// that "unknown address" code paths remain reachable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PacketDomains {
    /// Candidate MAC addresses (hosts, broadcast, one fresh unicast).
    pub macs: Vec<u64>,
    /// Candidate IPv4 addresses (hosts, one fresh).
    pub ips: Vec<u64>,
    /// Candidate EtherTypes.
    pub eth_types: Vec<u64>,
    /// Candidate IP protocol numbers.
    pub nw_protos: Vec<u64>,
    /// Candidate transport ports.
    pub ports: Vec<u64>,
    /// Candidate TCP flag bytes.
    pub tcp_flags: Vec<u64>,
    /// Candidate ARP opcodes.
    pub arp_ops: Vec<u64>,
    /// Candidate payload tags.
    pub payloads: Vec<u64>,
}

impl PacketDomains {
    /// A MAC address that no modelled host owns: lets symbolic execution
    /// reach "destination unknown → flood" style code paths.
    pub const FRESH_MAC: u64 = 0x0200_0000_00fe;
    /// An IPv4 address no modelled host owns.
    pub const FRESH_IP: u64 = 0x0a00_00fe;

    /// Builds domains from a topology. The defaults favour layer-2
    /// applications (the pyswitch workload of Section 7): IPv4 + ARP +
    /// layer-2 ping EtherTypes, TCP, a client and a server port.
    pub fn from_topology(topology: &Topology) -> Self {
        let mut macs: Vec<u64> = topology.known_macs().iter().map(|m| m.value()).collect();
        macs.push(Self::FRESH_MAC);
        let mut ips: Vec<u64> = topology
            .known_ips()
            .iter()
            .map(|i| i.value() as u64)
            .collect();
        ips.push(Self::FRESH_IP);
        PacketDomains {
            macs,
            ips,
            eth_types: vec![
                EthType::L2Ping.value() as u64,
                EthType::Ipv4.value() as u64,
                EthType::Arp.value() as u64,
            ],
            nw_protos: vec![IpProto::Tcp.value() as u64, IpProto::Udp.value() as u64],
            ports: vec![80, 1000],
            tcp_flags: vec![TcpFlags::SYN.0 as u64, TcpFlags::ACK.0 as u64, 0],
            arp_ops: vec![0, 1, 2],
            payloads: vec![0],
        }
    }

    /// Restricts the EtherType candidates (builder style).
    pub fn with_eth_types(mut self, eth_types: Vec<u64>) -> Self {
        assert!(!eth_types.is_empty());
        self.eth_types = eth_types;
        self
    }

    /// Restricts the transport-port candidates (builder style).
    pub fn with_ports(mut self, ports: Vec<u64>) -> Self {
        assert!(!ports.is_empty());
        self.ports = ports;
        self
    }

    /// Restricts the payload-tag candidates (builder style).
    pub fn with_payloads(mut self, payloads: Vec<u64>) -> Self {
        assert!(!payloads.is_empty());
        self.payloads = payloads;
        self
    }

    /// Total number of concrete packets this domain describes — the size of
    /// the space symbolic execution avoids enumerating.
    pub fn cartesian_size(&self) -> u128 {
        [
            self.macs.len(),
            self.macs.len(),
            self.eth_types.len(),
            self.ips.len(),
            self.ips.len(),
            self.nw_protos.len(),
            self.ports.len(),
            self.ports.len(),
            self.tcp_flags.len(),
            self.arp_ops.len(),
            self.payloads.len(),
        ]
        .iter()
        .map(|&n| n as u128)
        .product()
    }
}

/// The solver variables backing one fully-symbolic packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SymPacketVars {
    src_mac: crate::expr::VarId,
    dst_mac: crate::expr::VarId,
    eth_type: crate::expr::VarId,
    src_ip: crate::expr::VarId,
    dst_ip: crate::expr::VarId,
    nw_proto: crate::expr::VarId,
    src_port: crate::expr::VarId,
    dst_port: crate::expr::VarId,
    tcp_flags: crate::expr::VarId,
    arp_op: crate::expr::VarId,
    payload: crate::expr::VarId,
}

impl SymPacketVars {
    /// Reconstructs a concrete packet from a solver model. `id` is the
    /// provenance id assigned to the injected packet.
    pub fn packet_from(&self, assignment: &Assignment, id: u64) -> Packet {
        let get = |v| {
            assignment
                .get(v)
                .expect("model must be total over packet variables")
        };
        Packet {
            id: PacketId(id),
            src_mac: MacAddr(get(self.src_mac)),
            dst_mac: MacAddr(get(self.dst_mac)),
            eth_type: EthType::from_value(get(self.eth_type) as u16),
            src_ip: NwAddr(get(self.src_ip) as u32),
            dst_ip: NwAddr(get(self.dst_ip) as u32),
            nw_proto: IpProto::from_value(get(self.nw_proto) as u8),
            src_port: get(self.src_port) as u16,
            dst_port: get(self.dst_port) as u16,
            tcp_flags: TcpFlags(get(self.tcp_flags) as u8),
            arp_op: get(self.arp_op) as u8,
            payload: get(self.payload) as u32,
        }
    }
}

/// A packet whose header fields may be symbolic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SymPacket {
    /// Source MAC address.
    pub src_mac: SymValue,
    /// Destination MAC address.
    pub dst_mac: SymValue,
    /// EtherType.
    pub eth_type: SymValue,
    /// IPv4 source address.
    pub src_ip: SymValue,
    /// IPv4 destination address.
    pub dst_ip: SymValue,
    /// IP protocol.
    pub nw_proto: SymValue,
    /// Transport source port.
    pub src_port: SymValue,
    /// Transport destination port.
    pub dst_port: SymValue,
    /// TCP flags byte.
    pub tcp_flags: SymValue,
    /// ARP opcode.
    pub arp_op: SymValue,
    /// Abstract payload tag.
    pub payload: SymValue,
    /// The concrete packet this symbolic packet was lifted from, if any
    /// (present under model checking, absent under `discover_packets`).
    concrete_origin: Option<Packet>,
}

impl SymPacket {
    /// Lifts a concrete packet: every field is concrete.
    pub fn from_concrete(pkt: &Packet) -> Self {
        SymPacket {
            src_mac: SymValue::concrete(pkt.src_mac.value()),
            dst_mac: SymValue::concrete(pkt.dst_mac.value()),
            eth_type: SymValue::concrete(pkt.eth_type.value() as u64),
            src_ip: SymValue::concrete(pkt.src_ip.value() as u64),
            dst_ip: SymValue::concrete(pkt.dst_ip.value() as u64),
            nw_proto: SymValue::concrete(pkt.nw_proto.value() as u64),
            src_port: SymValue::concrete(pkt.src_port as u64),
            dst_port: SymValue::concrete(pkt.dst_port as u64),
            tcp_flags: SymValue::concrete(pkt.tcp_flags.0 as u64),
            arp_op: SymValue::concrete(pkt.arp_op as u64),
            payload: SymValue::concrete(pkt.payload as u64),
            concrete_origin: Some(*pkt),
        }
    }

    /// Declares a fully-symbolic packet against `solver`, one variable per
    /// header field with the candidate domains of `domains`.
    pub fn symbolic(solver: &mut Solver, domains: &PacketDomains) -> (SymPacket, SymPacketVars) {
        let vars = SymPacketVars {
            src_mac: solver.fresh_var(Domain::new(domains.macs.iter().copied())),
            dst_mac: solver.fresh_var(Domain::new(domains.macs.iter().copied())),
            eth_type: solver.fresh_var(Domain::new(domains.eth_types.iter().copied())),
            src_ip: solver.fresh_var(Domain::new(domains.ips.iter().copied())),
            dst_ip: solver.fresh_var(Domain::new(domains.ips.iter().copied())),
            nw_proto: solver.fresh_var(Domain::new(domains.nw_protos.iter().copied())),
            src_port: solver.fresh_var(Domain::new(domains.ports.iter().copied())),
            dst_port: solver.fresh_var(Domain::new(domains.ports.iter().copied())),
            tcp_flags: solver.fresh_var(Domain::new(domains.tcp_flags.iter().copied())),
            arp_op: solver.fresh_var(Domain::new(domains.arp_ops.iter().copied())),
            payload: solver.fresh_var(Domain::new(domains.payloads.iter().copied())),
        };
        let pkt = SymPacket {
            src_mac: SymValue::var(vars.src_mac),
            dst_mac: SymValue::var(vars.dst_mac),
            eth_type: SymValue::var(vars.eth_type),
            src_ip: SymValue::var(vars.src_ip),
            dst_ip: SymValue::var(vars.dst_ip),
            nw_proto: SymValue::var(vars.nw_proto),
            src_port: SymValue::var(vars.src_port),
            dst_port: SymValue::var(vars.dst_port),
            tcp_flags: SymValue::var(vars.tcp_flags),
            arp_op: SymValue::var(vars.arp_op),
            payload: SymValue::var(vars.payload),
            concrete_origin: None,
        };
        (pkt, vars)
    }

    /// The concrete packet this symbolic packet was lifted from, if any.
    pub fn concrete_origin(&self) -> Option<&Packet> {
        self.concrete_origin.as_ref()
    }

    /// True if every field is concrete.
    pub fn is_concrete(&self) -> bool {
        self.concrete_origin.is_some()
            || [
                &self.src_mac,
                &self.dst_mac,
                &self.eth_type,
                &self.src_ip,
                &self.dst_ip,
                &self.nw_proto,
                &self.src_port,
                &self.dst_port,
                &self.tcp_flags,
                &self.arp_op,
                &self.payload,
            ]
            .iter()
            .all(|v| v.is_concrete())
    }

    // ----- Convenience predicates used by the modelled applications -----

    /// `pkt.src[0] & 1` — the group/broadcast bit of the source MAC
    /// (Figure 3, line 4).
    pub fn src_mac_is_group(&self) -> SymBool {
        self.src_mac
            .extract_byte(0, 6)
            .bit_and(&SymValue::concrete(1))
            .eq_const(1)
    }

    /// `pkt.dst[0] & 1` — the group/broadcast bit of the destination MAC
    /// (Figure 3, line 5).
    pub fn dst_mac_is_group(&self) -> SymBool {
        self.dst_mac
            .extract_byte(0, 6)
            .bit_and(&SymValue::concrete(1))
            .eq_const(1)
    }

    /// True if the packet is an ARP frame.
    pub fn is_arp(&self) -> SymBool {
        self.eth_type.eq_const(EthType::Arp.value() as u64)
    }

    /// True if the packet is an IPv4 frame.
    pub fn is_ipv4(&self) -> SymBool {
        self.eth_type.eq_const(EthType::Ipv4.value() as u64)
    }

    /// True if the packet is TCP over IPv4.
    pub fn is_tcp(&self) -> SymBool {
        self.is_ipv4()
            .and(&self.nw_proto.eq_const(IpProto::Tcp.value() as u64))
    }

    /// True if the TCP SYN bit is set.
    pub fn is_syn(&self) -> SymBool {
        self.tcp_flags
            .bit_and(&SymValue::concrete(TcpFlags::SYN.0 as u64))
            .eq_const(TcpFlags::SYN.0 as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::{ConcreteEnv, Env};
    use crate::explore::PathExplorer;
    use nice_openflow::Topology;

    fn topo() -> Topology {
        Topology::linear_two_switches()
    }

    #[test]
    fn domains_include_topology_addresses_and_fresh_values() {
        let d = PacketDomains::from_topology(&topo());
        assert!(d.macs.contains(&MacAddr::for_host(1).value()));
        assert!(d.macs.contains(&MacAddr::BROADCAST.value()));
        assert!(d.macs.contains(&PacketDomains::FRESH_MAC));
        assert!(d.ips.contains(&(NwAddr::for_host(1).value() as u64)));
        assert!(d.ips.contains(&PacketDomains::FRESH_IP));
        assert!(d.cartesian_size() > 1000);
    }

    #[test]
    fn domain_builders_replace_candidates() {
        let d = PacketDomains::from_topology(&topo())
            .with_eth_types(vec![EthType::Ipv4.value() as u64])
            .with_ports(vec![80])
            .with_payloads(vec![1, 2]);
        assert_eq!(d.eth_types.len(), 1);
        assert_eq!(d.ports, vec![80]);
        assert_eq!(d.payloads, vec![1, 2]);
    }

    #[test]
    fn concrete_lift_preserves_fields() {
        let pkt = Packet::tcp(
            3,
            MacAddr::for_host(1),
            MacAddr::for_host(2),
            NwAddr::for_host(1),
            NwAddr::for_host(2),
            1000,
            80,
            TcpFlags::SYN,
            7,
        );
        let sp = SymPacket::from_concrete(&pkt);
        assert!(sp.is_concrete());
        assert_eq!(sp.concrete_origin(), Some(&pkt));
        let mut env = ConcreteEnv::new();
        assert_eq!(env.concretize(&sp.src_mac), pkt.src_mac.value());
        assert_eq!(env.concretize(&sp.dst_port), 80);
        assert!(env.branch(&sp.is_tcp()));
        assert!(env.branch(&sp.is_syn()));
        assert!(!env.branch(&sp.src_mac_is_group()));
    }

    #[test]
    fn broadcast_packet_sets_group_bit() {
        let pkt = Packet::arp_request(
            1,
            MacAddr::for_host(1),
            NwAddr::for_host(1),
            NwAddr::for_host(2),
        );
        let sp = SymPacket::from_concrete(&pkt);
        let mut env = ConcreteEnv::new();
        assert!(env.branch(&sp.dst_mac_is_group()));
        assert!(env.branch(&sp.is_arp()));
        assert!(!env.branch(&sp.is_ipv4()));
    }

    #[test]
    fn symbolic_packet_roundtrips_through_solver_model() {
        let mut solver = Solver::new();
        let domains = PacketDomains::from_topology(&topo());
        let (sp, vars) = SymPacket::symbolic(&mut solver, &domains);
        assert!(!sp.is_concrete());
        // The seed model concretises to a packet drawn from the domains.
        let model = solver.seed_assignment();
        let pkt = vars.packet_from(&model, 42);
        assert_eq!(pkt.id.0, 42);
        assert!(domains.macs.contains(&pkt.src_mac.value()));
        assert!(domains.eth_types.contains(&(pkt.eth_type.value() as u64)));
        assert!(domains.ports.contains(&(pkt.dst_port as u64)));
    }

    #[test]
    fn symbolic_packet_drives_path_discovery() {
        // A miniature pyswitch decision: broadcast-source check then known-
        // destination check must yield three classes over the MAC domain.
        let mut solver = Solver::new();
        let domains = PacketDomains::from_topology(&topo());
        let (sp, vars) = SymPacket::symbolic(&mut solver, &domains);
        let known_dst = MacAddr::for_host(2).value();

        let explorer = PathExplorer::default();
        let outcome = explorer.explore(&mut solver, |env| {
            if env.branch(&sp.src_mac_is_group()) {
                return;
            }
            if env.branch(&sp.dst_mac.eq_const(known_dst)) {}
        });
        assert_eq!(outcome.paths.len(), 3);
        // The representatives include a broadcast-source packet and a packet
        // towards the known destination.
        let packets: Vec<Packet> = outcome
            .representative_inputs()
            .enumerate()
            .map(|(i, a)| vars.packet_from(a, i as u64))
            .collect();
        assert!(packets.iter().any(|p| p.src_mac.is_group()));
        assert!(packets
            .iter()
            .any(|p| !p.src_mac.is_group() && p.dst_mac.value() == known_dst));
        assert!(packets
            .iter()
            .any(|p| !p.src_mac.is_group() && p.dst_mac.value() != known_dst));
    }
}
