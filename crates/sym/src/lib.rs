//! # nice-sym
//!
//! Symbolic (concolic) execution support for NICE.
//!
//! Section 3 of the paper: rather than enumerating all possible packets, NICE
//! symbolically executes the controller's event handlers to find *equivalence
//! classes* of packets — ranges of header-field values that exercise the same
//! code path — and injects one representative ("relevant") packet per class.
//!
//! The original prototype instruments Python byte-code and queries the STP
//! solver. This crate reproduces the same mechanism as a library:
//!
//! * [`value::SymValue`] / [`value::SymBool`] — values that are either
//!   concrete integers or symbolic expressions over lazily-created variables
//!   (one per packet header field, Section 3.2 "symbolic packets").
//! * [`env::Env`] — the execution environment handlers branch through. Under
//!   [`env::ConcreteEnv`] (used by the model checker) a branch simply
//!   evaluates; under [`env::SymExecEnv`] (used by the concolic engine) the
//!   branch outcome is taken from the current concrete input and the branch
//!   condition is recorded as a path constraint — exactly what the paper's
//!   instrumented branches do.
//! * [`solver`] — a finite-domain constraint solver standing in for STP. The
//!   paper already restricts header fields to "the MAC and IP addresses used
//!   by the hosts and switches in the system model" (domain knowledge), so a
//!   propagating backtracking search over those candidate sets decides the
//!   same queries.
//! * [`explore::PathExplorer`] — the generational (DART-style) concolic
//!   search that repeatedly negates the last unexplored branch of a path,
//!   asks the solver for a new input, and re-executes, until every feasible
//!   path of the handler has been covered.
//! * [`symmap::SymMap`] — the dictionary stub of Section 6: a map that, when
//!   indexed with a symbolic key, exposes the equality constraints between
//!   the key and the entries it may alias.
//! * [`packet::SymPacket`] / [`stats::SymStats`] — the symbolic inputs handed
//!   to `packet_in` and statistics handlers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod env;
pub mod explore;
pub mod expr;
pub mod packet;
pub mod solver;
pub mod stats;
pub mod symmap;
pub mod value;

pub use env::{ConcreteEnv, Env, SymExecEnv};
pub use explore::{ExploreConfig, ExploreOutcome, PathExplorer, PathResult};
pub use expr::{BoolExpr, Domain, Expr, VarId, VarSet};
pub use packet::{PacketDomains, SymPacket, SymPacketVars};
pub use solver::{Assignment, SolveResult, Solver};
pub use stats::{StatsDomains, SymStats};
pub use symmap::SymMap;
pub use value::{SymBool, SymValue};
