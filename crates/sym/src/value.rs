//! Symbolic values: the data type controller handlers compute with.
//!
//! A [`SymValue`] is either a concrete `u64` or a symbolic [`Expr`]. The
//! paper implements these as a "symbolic integer" Python class that "tracks
//! assignments, changes and comparisons to its value while behaving like a
//! normal integer" (Section 6); here the same role is played by an enum with
//! operator methods. Comparisons produce [`SymBool`]s, which handlers turn
//! into control flow by calling [`crate::env::Env::branch`].

use crate::expr::{BoolExpr, Expr, VarId};
use std::fmt;

/// An integer value that may be symbolic.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum SymValue {
    /// A known concrete value.
    Concrete(u64),
    /// A symbolic expression.
    Symbolic(Expr),
}

impl SymValue {
    /// A concrete value.
    pub fn concrete(v: u64) -> Self {
        SymValue::Concrete(v)
    }

    /// A fresh reference to a symbolic variable.
    pub fn var(v: VarId) -> Self {
        SymValue::Symbolic(Expr::Var(v))
    }

    /// True if this value is concrete.
    pub fn is_concrete(&self) -> bool {
        matches!(self, SymValue::Concrete(_))
    }

    /// The concrete value, if known.
    pub fn as_concrete(&self) -> Option<u64> {
        match self {
            SymValue::Concrete(v) => Some(*v),
            SymValue::Symbolic(_) => None,
        }
    }

    /// The value as an expression (constants become `Expr::Const`).
    pub fn to_expr(&self) -> Expr {
        match self {
            SymValue::Concrete(v) => Expr::Const(*v),
            SymValue::Symbolic(e) => e.clone(),
        }
    }

    fn binop(
        &self,
        other: &SymValue,
        concrete: impl Fn(u64, u64) -> u64,
        symbolic: impl Fn(Expr, Expr) -> Expr,
    ) -> SymValue {
        match (self, other) {
            (SymValue::Concrete(a), SymValue::Concrete(b)) => SymValue::Concrete(concrete(*a, *b)),
            _ => SymValue::Symbolic(symbolic(self.to_expr(), other.to_expr())),
        }
    }

    /// Bitwise AND.
    pub fn bit_and(&self, other: &SymValue) -> SymValue {
        self.binop(
            other,
            |a, b| a & b,
            |a, b| Expr::And(Box::new(a), Box::new(b)),
        )
    }

    /// Bitwise OR.
    pub fn bit_or(&self, other: &SymValue) -> SymValue {
        self.binop(
            other,
            |a, b| a | b,
            |a, b| Expr::Or(Box::new(a), Box::new(b)),
        )
    }

    /// Bitwise XOR.
    pub fn bit_xor(&self, other: &SymValue) -> SymValue {
        self.binop(
            other,
            |a, b| a ^ b,
            |a, b| Expr::Xor(Box::new(a), Box::new(b)),
        )
    }

    /// Wrapping addition.
    pub fn add(&self, other: &SymValue) -> SymValue {
        self.binop(
            other,
            |a, b| a.wrapping_add(b),
            |a, b| Expr::Add(Box::new(a), Box::new(b)),
        )
    }

    /// Wrapping subtraction.
    pub fn sub(&self, other: &SymValue) -> SymValue {
        self.binop(
            other,
            |a, b| a.wrapping_sub(b),
            |a, b| Expr::Sub(Box::new(a), Box::new(b)),
        )
    }

    /// Logical shift right by a constant amount.
    pub fn shr(&self, n: u32) -> SymValue {
        match self {
            SymValue::Concrete(v) => SymValue::Concrete(v.checked_shr(n).unwrap_or(0)),
            SymValue::Symbolic(e) => SymValue::Symbolic(Expr::Shr(Box::new(e.clone()), n)),
        }
    }

    /// Logical shift left by a constant amount.
    pub fn shl(&self, n: u32) -> SymValue {
        match self {
            SymValue::Concrete(v) => SymValue::Concrete(v.checked_shl(n).unwrap_or(0)),
            SymValue::Symbolic(e) => SymValue::Symbolic(Expr::Shl(Box::new(e.clone()), n)),
        }
    }

    /// Extracts byte `index` counting from the most significant byte of a
    /// value that is `width_bytes` wide. `extract_byte(0, 6)` of a MAC
    /// address is the `pkt.src[0]` access in Figure 3.
    pub fn extract_byte(&self, index: u32, width_bytes: u32) -> SymValue {
        assert!(index < width_bytes, "byte index out of range");
        let shift = (width_bytes - 1 - index) * 8;
        self.shr(shift).bit_and(&SymValue::concrete(0xff))
    }

    fn cmp_op(
        &self,
        other: &SymValue,
        concrete: impl Fn(u64, u64) -> bool,
        symbolic: impl Fn(Expr, Expr) -> BoolExpr,
    ) -> SymBool {
        match (self, other) {
            (SymValue::Concrete(a), SymValue::Concrete(b)) => SymBool::concrete(concrete(*a, *b)),
            _ => SymBool::Symbolic(symbolic(self.to_expr(), other.to_expr())),
        }
    }

    /// Equality comparison.
    pub fn eq(&self, other: &SymValue) -> SymBool {
        self.cmp_op(other, |a, b| a == b, BoolExpr::Eq)
    }

    /// Inequality comparison.
    pub fn ne(&self, other: &SymValue) -> SymBool {
        self.cmp_op(other, |a, b| a != b, BoolExpr::Ne)
    }

    /// Unsigned less-than comparison.
    pub fn lt(&self, other: &SymValue) -> SymBool {
        self.cmp_op(other, |a, b| a < b, BoolExpr::Lt)
    }

    /// Unsigned less-or-equal comparison.
    pub fn le(&self, other: &SymValue) -> SymBool {
        self.cmp_op(other, |a, b| a <= b, BoolExpr::Le)
    }

    /// Unsigned greater-than comparison.
    pub fn gt(&self, other: &SymValue) -> SymBool {
        other.lt(self)
    }

    /// Unsigned greater-or-equal comparison.
    pub fn ge(&self, other: &SymValue) -> SymBool {
        other.le(self)
    }

    /// Equality with a concrete constant.
    pub fn eq_const(&self, c: u64) -> SymBool {
        self.eq(&SymValue::concrete(c))
    }
}

impl From<u64> for SymValue {
    fn from(v: u64) -> Self {
        SymValue::Concrete(v)
    }
}

impl fmt::Display for SymValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SymValue::Concrete(v) => write!(f, "{v:#x}"),
            SymValue::Symbolic(e) => write!(f, "{e}"),
        }
    }
}

/// A boolean value that may be symbolic.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum SymBool {
    /// A known boolean.
    Concrete(bool),
    /// A symbolic condition.
    Symbolic(BoolExpr),
}

impl SymBool {
    /// A concrete boolean.
    pub fn concrete(b: bool) -> Self {
        SymBool::Concrete(b)
    }

    /// True if the value is concrete.
    pub fn is_concrete(&self) -> bool {
        matches!(self, SymBool::Concrete(_))
    }

    /// The concrete value, if known.
    pub fn as_concrete(&self) -> Option<bool> {
        match self {
            SymBool::Concrete(b) => Some(*b),
            SymBool::Symbolic(_) => None,
        }
    }

    /// The value as a constraint (concrete booleans become `True`/`False`).
    pub fn to_expr(&self) -> BoolExpr {
        match self {
            SymBool::Concrete(true) => BoolExpr::True,
            SymBool::Concrete(false) => BoolExpr::False,
            SymBool::Symbolic(e) => e.clone(),
        }
    }

    /// Logical negation.
    pub fn not(&self) -> SymBool {
        match self {
            SymBool::Concrete(b) => SymBool::Concrete(!b),
            SymBool::Symbolic(e) => SymBool::Symbolic(e.negate()),
        }
    }

    /// Logical conjunction.
    pub fn and(&self, other: &SymBool) -> SymBool {
        match (self, other) {
            (SymBool::Concrete(false), _) | (_, SymBool::Concrete(false)) => {
                SymBool::Concrete(false)
            }
            (SymBool::Concrete(true), b) => b.clone(),
            (a, SymBool::Concrete(true)) => a.clone(),
            (a, b) => {
                SymBool::Symbolic(BoolExpr::And(Box::new(a.to_expr()), Box::new(b.to_expr())))
            }
        }
    }

    /// Logical disjunction.
    pub fn or(&self, other: &SymBool) -> SymBool {
        match (self, other) {
            (SymBool::Concrete(true), _) | (_, SymBool::Concrete(true)) => SymBool::Concrete(true),
            (SymBool::Concrete(false), b) => b.clone(),
            (a, SymBool::Concrete(false)) => a.clone(),
            (a, b) => SymBool::Symbolic(BoolExpr::Or(Box::new(a.to_expr()), Box::new(b.to_expr()))),
        }
    }
}

impl From<bool> for SymBool {
    fn from(b: bool) -> Self {
        SymBool::Concrete(b)
    }
}

impl fmt::Display for SymBool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SymBool::Concrete(b) => write!(f, "{b}"),
            SymBool::Symbolic(e) => write!(f, "{e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concrete_arithmetic_stays_concrete() {
        let a = SymValue::concrete(0x0200_0000_0001);
        let b = SymValue::concrete(1);
        assert_eq!(a.bit_and(&b).as_concrete(), Some(1));
        assert_eq!(a.add(&b).as_concrete(), Some(0x0200_0000_0002));
        assert_eq!(a.sub(&b).as_concrete(), Some(0x0200_0000_0000));
        assert_eq!(
            SymValue::concrete(0b1010)
                .bit_or(&SymValue::concrete(0b0101))
                .as_concrete(),
            Some(0b1111)
        );
        assert_eq!(
            SymValue::concrete(0b1100)
                .bit_xor(&SymValue::concrete(0b1010))
                .as_concrete(),
            Some(0b0110)
        );
        assert_eq!(SymValue::concrete(0x100).shr(8).as_concrete(), Some(1));
        assert_eq!(SymValue::concrete(1).shl(8).as_concrete(), Some(0x100));
    }

    #[test]
    fn symbolic_operations_build_expressions() {
        let v = SymValue::var(VarId(0));
        let r = v.bit_and(&SymValue::concrete(1));
        assert!(!r.is_concrete());
        assert_eq!(
            r.to_expr(),
            Expr::And(Box::new(Expr::Var(VarId(0))), Box::new(Expr::Const(1)))
        );
        assert!(v.eq(&SymValue::concrete(3)).as_concrete().is_none());
    }

    #[test]
    fn comparisons_on_concrete_values() {
        let a = SymValue::concrete(3);
        let b = SymValue::concrete(5);
        assert_eq!(a.eq(&b).as_concrete(), Some(false));
        assert_eq!(a.ne(&b).as_concrete(), Some(true));
        assert_eq!(a.lt(&b).as_concrete(), Some(true));
        assert_eq!(a.le(&a).as_concrete(), Some(true));
        assert_eq!(b.gt(&a).as_concrete(), Some(true));
        assert_eq!(b.ge(&b).as_concrete(), Some(true));
        assert_eq!(a.eq_const(3).as_concrete(), Some(true));
    }

    #[test]
    fn extract_byte_mirrors_indexing() {
        // The first octet of a MAC address determines broadcast-ness.
        let mac = SymValue::concrete(MacLike::BROADCAST);
        assert_eq!(mac.extract_byte(0, 6).as_concrete(), Some(0xff));
        let unicast = SymValue::concrete(0x0200_0000_0005);
        assert_eq!(unicast.extract_byte(0, 6).as_concrete(), Some(0x02));
        assert_eq!(unicast.extract_byte(5, 6).as_concrete(), Some(0x05));
    }

    struct MacLike;
    impl MacLike {
        const BROADCAST: u64 = 0xffff_ffff_ffff;
    }

    #[test]
    #[should_panic(expected = "byte index out of range")]
    fn extract_byte_bounds_checked() {
        SymValue::concrete(0).extract_byte(6, 6);
    }

    #[test]
    fn bool_logic_short_circuits() {
        let t = SymBool::concrete(true);
        let f = SymBool::concrete(false);
        let sym = SymBool::Symbolic(BoolExpr::Eq(Expr::Var(VarId(0)), Expr::Const(1)));
        assert_eq!(t.and(&f).as_concrete(), Some(false));
        assert_eq!(t.or(&f).as_concrete(), Some(true));
        assert_eq!(f.and(&sym).as_concrete(), Some(false));
        assert_eq!(t.or(&sym).as_concrete(), Some(true));
        // true && sym simplifies to sym itself.
        assert_eq!(t.and(&sym), sym);
        assert_eq!(f.or(&sym), sym);
        assert_eq!(t.not().as_concrete(), Some(false));
        assert!(sym.not().as_concrete().is_none());
    }

    #[test]
    fn conversions() {
        assert_eq!(SymValue::from(7u64).as_concrete(), Some(7));
        assert_eq!(SymBool::from(true).as_concrete(), Some(true));
        assert_eq!(SymBool::concrete(true).to_expr(), BoolExpr::True);
        assert_eq!(SymBool::concrete(false).to_expr(), BoolExpr::False);
    }

    #[test]
    fn display_forms() {
        assert_eq!(SymValue::concrete(255).to_string(), "0xff");
        assert_eq!(SymValue::var(VarId(3)).to_string(), "v3");
        assert_eq!(SymBool::concrete(true).to_string(), "true");
    }
}
