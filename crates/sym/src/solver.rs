//! A finite-domain constraint solver.
//!
//! This is the repository's stand-in for the STP bit-vector solver used by
//! the NICE prototype. Because NICE constrains packet-header variables to the
//! addresses that occur in the modelled topology (plus designated "fresh"
//! values), every variable has a small finite candidate domain, and a
//! backtracking search with constraint propagation decides satisfiability of
//! the path constraints produced by concolic execution.
//!
//! The solver is deterministic: variables are assigned in ascending id order
//! and candidates are tried in domain order, so the "model" returned for a
//! satisfiable query is stable across runs, which keeps discovered relevant
//! packets (and therefore the whole state-space search) reproducible.

use crate::expr::{BoolExpr, Domain, VarId, VarSet};
use std::collections::BTreeMap;

/// A (possibly partial) assignment of concrete values to variables.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Assignment {
    values: BTreeMap<VarId, u64>,
}

impl Assignment {
    /// The empty assignment.
    pub fn new() -> Self {
        Assignment::default()
    }

    /// Builds an assignment from pairs.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (VarId, u64)>) -> Self {
        Assignment {
            values: pairs.into_iter().collect(),
        }
    }

    /// Sets the value of a variable.
    pub fn set(&mut self, var: VarId, value: u64) {
        self.values.insert(var, value);
    }

    /// Removes a variable's value.
    pub fn unset(&mut self, var: VarId) {
        self.values.remove(&var);
    }

    /// Gets the value of a variable, if assigned.
    pub fn get(&self, var: VarId) -> Option<u64> {
        self.values.get(&var).copied()
    }

    /// Number of assigned variables.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if no variable is assigned.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Iterates over `(variable, value)` pairs in variable order.
    pub fn iter(&self) -> impl Iterator<Item = (VarId, u64)> + '_ {
        self.values.iter().map(|(&k, &v)| (k, v))
    }

    /// Evaluates a constraint under this assignment. `None` means the
    /// constraint references unassigned variables.
    pub fn eval(&self, constraint: &BoolExpr) -> Option<bool> {
        constraint.eval_with(&|v| self.get(v))
    }
}

/// The result of a satisfiability query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolveResult {
    /// The constraints are satisfiable; a model is provided.
    Sat(Assignment),
    /// The constraints are unsatisfiable over the given domains.
    Unsat,
}

impl SolveResult {
    /// True if satisfiable.
    pub fn is_sat(&self) -> bool {
        matches!(self, SolveResult::Sat(_))
    }

    /// The model, if satisfiable.
    pub fn model(&self) -> Option<&Assignment> {
        match self {
            SolveResult::Sat(a) => Some(a),
            SolveResult::Unsat => None,
        }
    }
}

/// The finite-domain solver.
///
/// A solver owns the variable domains; satisfiability queries are made
/// against sets of constraints. The number of solver invocations is counted
/// so experiments can report solver load.
#[derive(Debug, Clone, Default)]
pub struct Solver {
    domains: BTreeMap<VarId, Domain>,
    next_var: u32,
    queries: u64,
}

impl Solver {
    /// Creates a solver with no variables.
    pub fn new() -> Self {
        Solver::default()
    }

    /// Declares a fresh variable with the given domain and returns its id.
    pub fn fresh_var(&mut self, domain: Domain) -> VarId {
        let id = VarId(self.next_var);
        self.next_var += 1;
        self.domains.insert(id, domain);
        id
    }

    /// The domain of a variable.
    pub fn domain(&self, var: VarId) -> Option<&Domain> {
        self.domains.get(&var)
    }

    /// Number of declared variables.
    pub fn var_count(&self) -> usize {
        self.domains.len()
    }

    /// Number of satisfiability queries answered so far.
    pub fn query_count(&self) -> u64 {
        self.queries
    }

    /// The default seed assignment: every declared variable takes the first
    /// candidate of its domain. This is the initial concrete input of the
    /// concolic search.
    pub fn seed_assignment(&self) -> Assignment {
        Assignment::from_pairs(self.domains.iter().map(|(&v, d)| (v, d.seed())))
    }

    /// Decides whether `constraints` are satisfiable, restricting every
    /// variable to its declared domain. Variables that appear in the
    /// constraints but were never declared are treated as having failed the
    /// query (this is a programming error in the caller, surfaced loudly in
    /// debug builds).
    pub fn solve(&mut self, constraints: &[BoolExpr]) -> SolveResult {
        self.queries += 1;

        // Collect the variables that actually occur; unconstrained variables
        // can keep their seed value and do not participate in the search.
        let mut vars = VarSet::new();
        for c in constraints {
            c.collect_vars(&mut vars);
        }
        let vars: Vec<VarId> = vars.into_iter().collect();
        for v in &vars {
            debug_assert!(
                self.domains.contains_key(v),
                "constraint references undeclared {v}"
            );
            if !self.domains.contains_key(v) {
                return SolveResult::Unsat;
            }
        }

        let mut assignment = Assignment::new();
        if self.backtrack(&vars, 0, constraints, &mut assignment) {
            // Fill in unconstrained variables with their seeds so the model is
            // total over the declared variables.
            let mut model = self.seed_assignment();
            for (v, val) in assignment.iter() {
                model.set(v, val);
            }
            SolveResult::Sat(model)
        } else {
            SolveResult::Unsat
        }
    }

    /// Convenience wrapper: solve and return the model or `None`.
    pub fn solve_model(&mut self, constraints: &[BoolExpr]) -> Option<Assignment> {
        match self.solve(constraints) {
            SolveResult::Sat(m) => Some(m),
            SolveResult::Unsat => None,
        }
    }

    fn backtrack(
        &self,
        vars: &[VarId],
        index: usize,
        constraints: &[BoolExpr],
        assignment: &mut Assignment,
    ) -> bool {
        // Prune: any constraint already fully evaluable must hold.
        for c in constraints {
            if assignment.eval(c) == Some(false) {
                return false;
            }
        }
        if index == vars.len() {
            // All variables assigned; every constraint must now evaluate true.
            return constraints.iter().all(|c| assignment.eval(c) == Some(true));
        }
        let var = vars[index];
        let domain = match self.domains.get(&var) {
            Some(d) => d.clone(),
            None => return false,
        };
        for &candidate in domain.candidates() {
            assignment.set(var, candidate);
            if self.backtrack(vars, index + 1, constraints, assignment) {
                return true;
            }
        }
        assignment.unset(var);
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;

    fn eq(v: VarId, c: u64) -> BoolExpr {
        BoolExpr::Eq(Expr::Var(v), Expr::Const(c))
    }

    fn ne(v: VarId, c: u64) -> BoolExpr {
        BoolExpr::Ne(Expr::Var(v), Expr::Const(c))
    }

    #[test]
    fn empty_query_is_sat() {
        let mut s = Solver::new();
        assert!(s.solve(&[]).is_sat());
        assert_eq!(s.query_count(), 1);
    }

    #[test]
    fn single_variable_equality() {
        let mut s = Solver::new();
        let v = s.fresh_var(Domain::new([1, 2, 3]));
        match s.solve(&[eq(v, 2)]) {
            SolveResult::Sat(m) => assert_eq!(m.get(v), Some(2)),
            SolveResult::Unsat => panic!("expected sat"),
        }
        assert!(!s.solve(&[eq(v, 9)]).is_sat());
    }

    #[test]
    fn conflicting_constraints_are_unsat() {
        let mut s = Solver::new();
        let v = s.fresh_var(Domain::new([1, 2]));
        assert!(!s.solve(&[eq(v, 1), eq(v, 2)]).is_sat());
        assert!(s.solve(&[ne(v, 1)]).is_sat());
        assert!(!s.solve(&[ne(v, 1), ne(v, 2)]).is_sat());
    }

    #[test]
    fn multi_variable_interaction() {
        let mut s = Solver::new();
        let a = s.fresh_var(Domain::new([1, 2, 3]));
        let b = s.fresh_var(Domain::new([1, 2, 3]));
        // a == b and a != 1 and b != 3 forces a == b == 2.
        let cons = vec![BoolExpr::Eq(Expr::Var(a), Expr::Var(b)), ne(a, 1), ne(b, 3)];
        let model = s.solve_model(&cons).expect("sat");
        assert_eq!(model.get(a), Some(2));
        assert_eq!(model.get(b), Some(2));
    }

    #[test]
    fn bit_extraction_constraints() {
        // Model the pyswitch broadcast test: (mac >> 40) & 1 == 0 for a
        // unicast address, over a domain of one unicast and the broadcast MAC.
        let mut s = Solver::new();
        let unicast = 0x0200_0000_0001u64;
        let broadcast = 0xffff_ffff_ffffu64;
        let mac = s.fresh_var(Domain::new([broadcast, unicast]));
        let first_octet_lsb = Expr::And(
            Box::new(Expr::Shr(Box::new(Expr::Var(mac)), 40)),
            Box::new(Expr::Const(1)),
        );
        let is_unicast = BoolExpr::Eq(first_octet_lsb.clone(), Expr::Const(0));
        let model = s
            .solve_model(std::slice::from_ref(&is_unicast))
            .expect("sat");
        assert_eq!(model.get(mac), Some(unicast));
        let model = s.solve_model(&[is_unicast.negate()]).expect("sat");
        assert_eq!(model.get(mac), Some(broadcast));
    }

    #[test]
    fn model_is_total_and_deterministic() {
        let mut s = Solver::new();
        let a = s.fresh_var(Domain::new([5, 6]));
        let b = s.fresh_var(Domain::new([7, 8]));
        let m1 = s.solve_model(&[eq(a, 6)]).unwrap();
        let m2 = s.solve_model(&[eq(a, 6)]).unwrap();
        assert_eq!(m1, m2);
        // Unconstrained variable keeps its seed (first candidate).
        assert_eq!(m1.get(b), Some(7));
    }

    #[test]
    fn seed_assignment_uses_first_candidates() {
        let mut s = Solver::new();
        let a = s.fresh_var(Domain::new([10, 20]));
        let b = s.fresh_var(Domain::new([30]));
        let seed = s.seed_assignment();
        assert_eq!(seed.get(a), Some(10));
        assert_eq!(seed.get(b), Some(30));
        assert_eq!(seed.len(), 2);
    }

    #[test]
    fn domain_and_var_count_accessors() {
        let mut s = Solver::new();
        let a = s.fresh_var(Domain::new([1]));
        assert_eq!(s.var_count(), 1);
        assert_eq!(s.domain(a).unwrap().candidates(), &[1]);
        assert!(s.domain(VarId(99)).is_none());
    }

    #[test]
    fn disjunctions_and_comparisons() {
        let mut s = Solver::new();
        let a = s.fresh_var(Domain::new([1, 5, 10]));
        let c = BoolExpr::Or(
            Box::new(BoolExpr::Lt(Expr::Var(a), Expr::Const(2))),
            Box::new(BoolExpr::Le(Expr::Const(10), Expr::Var(a))),
        );
        // Negation forces the middle candidate.
        let model = s.solve_model(&[c.negate()]).unwrap();
        assert_eq!(model.get(a), Some(5));
    }

    #[test]
    fn assignment_eval_partial() {
        let mut a = Assignment::new();
        let c = eq(VarId(0), 4);
        assert_eq!(a.eval(&c), None);
        a.set(VarId(0), 4);
        assert_eq!(a.eval(&c), Some(true));
        a.set(VarId(0), 5);
        assert_eq!(a.eval(&c), Some(false));
        a.unset(VarId(0));
        assert!(a.is_empty());
    }
}
