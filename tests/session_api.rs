//! The session-based checking API, exercised end to end through the public
//! `nice` crate on the bench workloads (the pyswitch chain and the
//! load-balancer BUG-V scenario):
//!
//! (a) `ModelChecker::run()` is a thin wrapper over a session with a no-op
//!     observer — reports agree bit-for-bit under 1 worker, and on every
//!     deterministic metric under many workers;
//! (b) sessions stream `Started`/`Progress`/`ViolationFound`/`Finished`
//!     events consistent with the final report;
//! (c) a `CancelToken` fired mid-search stops every worker and yields
//!     `Outcome::Interrupted` with the partial statistics gathered so far;
//! (d) a deadline of zero interrupts immediately — no worker hangs.

use nice::prelude::*;
use nice::scenarios::{find_scenario, registry};
use nice_bench::chain_ping_workload;
use std::time::{Duration, Instant};

/// Worker count for the parallel legs (CI sets `NICE_TEST_WORKERS=4`).
fn test_workers() -> usize {
    std::env::var("NICE_TEST_WORKERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4)
}

fn chain_scenario() -> Scenario {
    chain_ping_workload(5, 2)
}

fn bug_v_scenario() -> Scenario {
    find_scenario("bug-v-packets-dropped-in-transition")
        .expect("BUG-V is registered")
        .build()
}

fn checker(scenario: Scenario, workers: usize) -> ModelChecker {
    Nice::new(scenario)
        .collect_all_violations()
        .with_workers(workers)
        .checker()
}

/// (property, trace) pairs, sorted — the full violation identity.
fn violation_set(report: &CheckReport) -> Vec<(String, Vec<String>)> {
    let mut out: Vec<(String, Vec<String>)> = report
        .violations
        .iter()
        .map(|v| (v.property.clone(), v.trace.labels()))
        .collect();
    out.sort();
    out
}

#[test]
fn run_is_bit_identical_to_a_noop_session_sequentially() {
    for scenario in [chain_scenario, bug_v_scenario] {
        let direct = checker(scenario(), 1).run();
        let session = checker(scenario(), 1).session().run_with(&mut NoopObserver);
        assert_eq!(direct.stats.transitions, session.stats.transitions);
        assert_eq!(direct.stats.unique_states, session.stats.unique_states);
        assert_eq!(direct.stats.terminal_states, session.stats.terminal_states);
        assert_eq!(direct.stats.max_depth, session.stats.max_depth);
        assert_eq!(
            direct.stats.pruned_by_strategy,
            session.stats.pruned_by_strategy
        );
        assert_eq!(direct.stats.pruned_by_por, session.stats.pruned_by_por);
        assert_eq!(direct.stats.dedup_hits, session.stats.dedup_hits);
        assert_eq!(direct.stats.truncated, session.stats.truncated);
        assert_eq!(violation_set(&direct), violation_set(&session));
        assert_eq!(direct.outcome, Outcome::Completed);
        assert_eq!(session.outcome, Outcome::Completed);
    }
}

#[test]
fn run_matches_a_noop_session_under_many_workers() {
    // The parallel engine is deterministic in its fingerprint counts and
    // violated-property sets (traces race), so those are what the wrapper
    // must preserve.
    let workers = test_workers();
    for scenario in [chain_scenario, bug_v_scenario] {
        let direct = checker(scenario(), workers).run();
        let session = checker(scenario(), workers)
            .session()
            .run_with(&mut NoopObserver);
        assert_eq!(direct.stats.transitions, session.stats.transitions);
        assert_eq!(direct.stats.unique_states, session.stats.unique_states);
        assert_eq!(direct.stats.terminal_states, session.stats.terminal_states);
        assert_eq!(direct.stats.dedup_hits, session.stats.dedup_hits);
        let properties = |r: &CheckReport| {
            let mut names: Vec<String> = r.violations.iter().map(|v| v.property.clone()).collect();
            names.sort();
            names
        };
        assert_eq!(properties(&direct), properties(&session));
        assert_eq!(session.outcome, Outcome::Completed);
    }
}

#[test]
fn session_events_are_consistent_with_the_final_report() {
    struct Recorder {
        started: u32,
        finished: u32,
        progress: u32,
        violations: Vec<String>,
        last_transitions: u64,
    }
    impl CheckObserver for Recorder {
        fn on_event(&mut self, event: &CheckEvent) {
            match event {
                CheckEvent::Started {
                    scenario, workers, ..
                } => {
                    assert!(scenario.starts_with("bug-v"));
                    assert_eq!(*workers, 1);
                    self.started += 1;
                }
                CheckEvent::Progress {
                    transitions, rate, ..
                } => {
                    assert!(*transitions >= self.last_transitions);
                    assert!(*rate >= 0.0);
                    self.last_transitions = *transitions;
                    self.progress += 1;
                }
                CheckEvent::ViolationFound(v) => self.violations.push(v.property.clone()),
                CheckEvent::Finished(report) => {
                    self.finished += 1;
                    assert_eq!(report.violations.len(), self.violations.len());
                }
            }
        }
    }

    let mut recorder = Recorder {
        started: 0,
        finished: 0,
        progress: 0,
        violations: Vec::new(),
        last_transitions: 0,
    };
    let report = checker(bug_v_scenario(), 1)
        .session()
        .with_progress_every(100)
        .run_with(&mut recorder);
    assert_eq!(recorder.started, 1);
    assert_eq!(recorder.finished, 1);
    assert!(recorder.progress >= 1, "BUG-V explores >100 transitions");
    assert_eq!(recorder.violations.len(), report.violations.len());
    assert!(!report.passed());
}

#[test]
fn cancel_token_stops_all_workers_with_partial_stats() {
    let full = checker(chain_scenario(), 1).run();
    for workers in [1, test_workers()] {
        let mc = checker(chain_scenario(), workers);
        let session = mc.session().with_progress_every(50);
        let token = session.cancel_token();
        let report = session.run_with(&mut move |event: &CheckEvent| {
            // Fire mid-search, from inside the event stream: the first
            // progress report arrives ~50 transitions in, well before the
            // chain's >10k-transition space is exhausted.
            if matches!(event, CheckEvent::Progress { .. }) {
                token.cancel();
            }
        });
        assert_eq!(
            report.outcome,
            Outcome::Interrupted(InterruptReason::Cancelled),
            "{workers} workers"
        );
        assert!(
            report.stats.transitions > 0,
            "{workers} workers: partial stats are reported"
        );
        assert!(
            report.stats.transitions < full.stats.transitions,
            "{workers} workers: cancellation must cut the search short \
             ({} vs {})",
            report.stats.transitions,
            full.stats.transitions
        );
    }
}

#[test]
fn zero_deadline_interrupts_without_hanging_any_worker() {
    for workers in [1, test_workers()] {
        let start = Instant::now();
        let report = checker(chain_scenario(), workers)
            .session()
            .with_time_budget(Duration::ZERO)
            .run();
        assert_eq!(
            report.outcome,
            Outcome::Interrupted(InterruptReason::DeadlineExceeded),
            "{workers} workers"
        );
        assert!(
            start.elapsed() < Duration::from_secs(30),
            "{workers} workers: the zero-deadline run must return promptly"
        );
        assert!(report.passed(), "nothing explored, nothing violated");
    }
}

#[test]
fn deadline_in_the_far_future_changes_nothing() {
    let plain = checker(bug_v_scenario(), 1).run();
    let bounded = checker(bug_v_scenario(), 1)
        .session()
        .with_deadline(Instant::now() + Duration::from_secs(3600))
        .run();
    assert_eq!(plain.stats.transitions, bounded.stats.transitions);
    assert_eq!(plain.stats.unique_states, bounded.stats.unique_states);
    assert_eq!(violation_set(&plain), violation_set(&bounded));
    assert_eq!(bounded.outcome, Outcome::Completed);
}

#[test]
fn report_text_distinguishes_outcomes() {
    // Exhausted search.
    let report = checker(bug_v_scenario(), 1).run();
    assert!(report.to_string().contains("outcome: exhausted"));
    // Budget-truncated search (completed, but cut by max_transitions).
    let truncated = Nice::new(chain_scenario())
        .with_max_transitions(5)
        .checker()
        .run();
    assert!(truncated.stats.truncated);
    assert!(truncated.to_string().contains("outcome: budget-truncated"));
    // Interrupted search.
    let interrupted = checker(chain_scenario(), 1)
        .session()
        .with_time_budget(Duration::ZERO)
        .run();
    assert!(interrupted
        .to_string()
        .contains("outcome: interrupted-by-deadline"));
}

#[test]
fn registry_is_reachable_through_the_public_api() {
    let entries = registry();
    assert!(entries.len() >= 16, "11 bugs + 5 fixes");
    for entry in &entries {
        assert_eq!(
            find_scenario(&entry.name).map(|e| e.name),
            Some(entry.name.clone())
        );
    }
}
