//! Distributed-checking equivalence: the coordinator + sharded worker
//! processes must agree with the in-process sequential engine.
//!
//! The sharding invariant is single ownership: each fingerprint is expanded
//! by exactly one worker (`(fp >> 56) % count`), so in a crash-free run the
//! sums of the shards' counters equal the sequential run *exactly* — not
//! just the verdict, the transition and state counts too. A 1-worker run is
//! the sequential engine by construction. A killed worker is respawned and
//! its shard re-derived from the coordinator's forward log; re-forwarded
//! duplicates dedup at their owners, so only `dedup_hits` may inflate.
//!
//! Every test serializes on one mutex: the coordinator spawns worker child
//! processes, and the crash test scopes the `NICE_DIST_DIE_AFTER`
//! environment variable, which must not leak into concurrent spawns.

use nice::prelude::*;
use nice_dist::{Coordinator, JobEvent, JobSpec, DIE_AFTER_ENV, WORKER_BIN_ENV};
use std::sync::{Mutex, PoisonError};

/// One coordinator (and its worker processes) at a time, and a fence around
/// the crash test's environment variable.
static DIST_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    DIST_LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A spec exploring the full space: every violation, no budgets.
fn full_spec(scenario: &str, inject_faults: bool) -> JobSpec {
    JobSpec {
        inject_faults,
        stop_at_first_violation: false,
        max_transitions: 0,
        ..JobSpec::new(scenario)
    }
}

fn sequential(spec: &JobSpec) -> CheckReport {
    let scenario = nice_apps::workloads::resolve(&spec.scenario).expect("known scenario spec");
    ModelChecker::new(scenario, spec.config()).run()
}

fn distributed(spec: &JobSpec, workers: usize) -> CheckReport {
    let mut coordinator = Coordinator::new(workers).expect("spawn worker pool");
    coordinator
        .run_job(spec, |_| {}, None)
        .expect("distributed job completes")
}

/// The sorted, deduplicated `(property, message)` set — the verdict
/// content, independent of discovery order and of which shard found it.
fn violation_set(report: &CheckReport) -> Vec<(String, String)> {
    let mut set: Vec<(String, String)> = report
        .violations
        .iter()
        .map(|v| (v.property.clone(), v.message.clone()))
        .collect();
    set.sort();
    set.dedup();
    set
}

fn assert_same_verdict(seq: &CheckReport, dist: &CheckReport, label: &str) {
    assert_eq!(
        seq.passed(),
        dist.passed(),
        "{label}: verdicts disagree (sequential passed={}, distributed passed={})",
        seq.passed(),
        dist.passed()
    );
    assert_eq!(
        violation_set(seq),
        violation_set(dist),
        "{label}: violation sets disagree"
    );
    assert_eq!(
        seq.outcome.label(false),
        dist.outcome.label(false),
        "{label}: outcome"
    );
}

/// Crash-free sharded runs sum to the sequential counters exactly.
fn assert_exact_counters(seq: &CheckReport, dist: &CheckReport, label: &str) {
    assert_eq!(
        seq.stats.transitions, dist.stats.transitions,
        "{label}: transitions"
    );
    assert_eq!(
        seq.stats.unique_states, dist.stats.unique_states,
        "{label}: unique states"
    );
    assert_eq!(
        seq.stats.terminal_states, dist.stats.terminal_states,
        "{label}: terminal states"
    );
    assert_eq!(
        seq.stats.dedup_hits, dist.stats.dedup_hits,
        "{label}: dedup hits"
    );
    assert_eq!(
        seq.stats.truncated, dist.stats.truncated,
        "{label}: truncated flag"
    );
}

#[test]
fn single_worker_run_matches_the_sequential_engine_exactly() {
    let _guard = lock();
    let spec = full_spec("chain:3:1", false);
    let seq = sequential(&spec);
    let dist = distributed(&spec, 1);
    assert_same_verdict(&seq, &dist, "chain:3:1 dist-1");
    assert_exact_counters(&seq, &dist, "chain:3:1 dist-1");
    assert_eq!(
        seq.stats.max_depth, dist.stats.max_depth,
        "chain:3:1 dist-1: a solo shard is the sequential search itself"
    );
    assert_eq!(seq.stats.pruned_by_strategy, dist.stats.pruned_by_strategy);
    assert_eq!(seq.stats.pruned_by_por, dist.stats.pruned_by_por);
    assert_eq!(
        seq.stats.symbolic_executions,
        dist.stats.symbolic_executions
    );
}

#[test]
fn sharded_chain_run_matches_sequential_verdict_and_counters() {
    let _guard = lock();
    // The 5-switch pyswitch chain with 2 pings: deterministic, no
    // violations, big enough that all shards do real work.
    let spec = full_spec("chain:5:2", false);
    let seq = sequential(&spec);
    assert!(seq.passed(), "chain:5:2 is violation-free sequentially");
    for workers in [2, 4] {
        let dist = distributed(&spec, workers);
        let label = format!("chain:5:2 dist-{workers}");
        assert_same_verdict(&seq, &dist, &label);
        assert_exact_counters(&seq, &dist, &label);
    }
}

#[test]
fn sharded_bug_v_run_finds_the_same_violations() {
    let _guard = lock();
    let spec = full_spec("bug-v-packets-dropped-in-transition", false);
    let seq = sequential(&spec);
    assert!(!seq.passed(), "BUG-V violates sequentially");
    for workers in [2, 4] {
        let dist = distributed(&spec, workers);
        let label = format!("bug-v dist-{workers}");
        assert_same_verdict(&seq, &dist, &label);
        assert_exact_counters(&seq, &dist, &label);
    }
}

#[test]
fn sharded_bug_xii_run_with_faults_finds_the_same_violations() {
    let _guard = lock();
    let spec = full_spec("bug-xii-packet-lost-on-switch-crash", true);
    let seq = sequential(&spec);
    assert!(!seq.passed(), "BUG-XII violates under fault injection");
    for workers in [2, 4] {
        let dist = distributed(&spec, workers);
        let label = format!("bug-xii dist-{workers}");
        assert_same_verdict(&seq, &dist, &label);
        assert_exact_counters(&seq, &dist, &label);
    }
}

#[test]
fn distributed_violation_traces_replay_in_process() {
    let _guard = lock();
    let spec = full_spec("bug-v-packets-dropped-in-transition", false);
    let dist = distributed(&spec, 2);
    assert!(!dist.passed());
    // The merged report's traces must be replayable end to end on the
    // sequential engine — shipping steps over the wire loses nothing.
    let scenario = nice_apps::workloads::resolve(&spec.scenario).unwrap();
    let checker = ModelChecker::new(scenario, spec.config());
    for violation in &dist.violations {
        let replay = checker.replay(&violation.trace);
        assert!(
            matches!(replay.outcome, ReplayOutcome::Completed),
            "trace for '{}' diverged: {:?}",
            violation.property,
            replay.outcome
        );
        assert!(
            replay
                .violations
                .iter()
                .any(|v| v.property == violation.property),
            "replaying the trace for '{}' did not reproduce it",
            violation.property
        );
    }
}

#[test]
fn a_worker_killed_mid_job_neither_hangs_nor_changes_the_verdict() {
    let _guard = lock();
    let spec = full_spec("bug-v-packets-dropped-in-transition", false);
    let seq = sequential(&spec);

    // Worker 1 aborts (no flush, no goodbye — a modelled SIGKILL) after 150
    // transitions; BUG-V gives each of 2 shards ~1200, so it dies mid-job.
    std::env::set_var(DIE_AFTER_ENV, "1:150");
    let mut restarts = 0usize;
    let mut coordinator = Coordinator::new(2).expect("spawn worker pool");
    let dist = coordinator.run_job(
        &spec,
        |event| {
            if let JobEvent::WorkerRestarted { .. } = event {
                restarts += 1;
            }
        },
        None,
    );
    std::env::remove_var(DIE_AFTER_ENV);
    let dist = dist.expect("job completes despite the crash");

    assert!(restarts >= 1, "the victim worker must actually have died");
    assert_same_verdict(&seq, &dist, "bug-v dist-2 with worker kill");
    // Re-deriving the dead shard replays the forward log; the re-explored
    // states re-forward to shards that already own them, so `dedup_hits`
    // may inflate — every other counter is crash-invariant.
    assert_eq!(
        seq.stats.transitions, dist.stats.transitions,
        "kill: transitions"
    );
    assert_eq!(
        seq.stats.unique_states, dist.stats.unique_states,
        "kill: unique states"
    );
    assert_eq!(
        seq.stats.terminal_states, dist.stats.terminal_states,
        "kill: terminal states"
    );
    assert!(
        dist.stats.dedup_hits >= seq.stats.dedup_hits,
        "kill: replayed forwards can only add dedup hits"
    );
}

#[test]
fn a_worker_that_always_dies_on_spawn_fails_the_job_instead_of_hanging() {
    let _guard = lock();

    // A stand-in for a stale or broken worker binary: accepts the job
    // frame, then dies without ever producing a frame of its own. Without
    // the coordinator's crash-streak cap this respawns forever and the job
    // never returns (exactly the failure mode of a worker speaking an old
    // protocol version).
    let script = std::env::temp_dir().join(format!("nice-dying-worker-{}.sh", std::process::id()));
    std::fs::write(&script, "#!/bin/sh\nhead -c 1 >/dev/null\nexit 1\n").expect("write script");
    let mut perms = std::fs::metadata(&script)
        .expect("stat script")
        .permissions();
    std::os::unix::fs::PermissionsExt::set_mode(&mut perms, 0o755);
    std::fs::set_permissions(&script, perms).expect("chmod script");

    std::env::set_var(WORKER_BIN_ENV, &script);
    let result = Coordinator::new(1)
        .expect("spawning the pool itself succeeds")
        .run_job(&full_spec("chain:3:1", false), |_| {}, None);
    std::env::remove_var(WORKER_BIN_ENV);
    let _ = std::fs::remove_file(&script);

    let err = result.expect_err("a worker dying on every spawn must fail the job");
    assert!(
        err.to_string().contains("died"),
        "error should name the crash loop, got: {err}"
    );
}
