//! The counterexample debugging toolkit, end to end through the public
//! `nice` crate on the Table 2 scenarios:
//!
//! (a) typed traces round-trip through the `nice-trace-v1` JSON schema, and
//!     replay of the re-parsed trace reproduces the identical violating
//!     fingerprint and verdict (a poor man's property test: every witness
//!     the registry's buggy scenarios produce is a generated case);
//! (b) replay of an emitted trace is bit-deterministic across repeated
//!     runs;
//! (c) `minimize` is sound (same property still violated under replay),
//!     idempotent, never grows, and shrinks the sloppy random-walk
//!     witnesses of BUG-V and fault-dependent BUG-XII by ≥ 40%;
//! (d) `bisect` pins the commitment frontier on BUG-V and BUG-XII, and on
//!     BUG-XII the committing transition is the injected switch crash.

use nice::prelude::*;
use nice::scenarios::find_scenario;

fn checker_for(name: &str, faults: bool) -> ModelChecker {
    let entry = find_scenario(name).expect("scenario is registered");
    ModelChecker::new(
        entry.build(),
        CheckerConfig::default().with_fault_injection(faults),
    )
}

/// The checker used for the sloppy-witness legs: random walks over the
/// finest interleaving granularity with fault injection on, collecting
/// every violation so the longest (most redundant) witness is available.
fn walk_checker(name: &str) -> ModelChecker {
    let entry = find_scenario(name).expect("scenario is registered");
    ModelChecker::new(
        entry.build(),
        CheckerConfig::generic_baseline()
            .with_stop_at_first(false)
            .with_fault_injection(true),
    )
}

/// The longest violation trace a seeded random-walk batch produces — the
/// canonical "sloppy witness": valid, violating, and full of steps a human
/// debugger does not care about.
fn sloppy_witness(checker: &ModelChecker) -> Trace {
    let report = checker.run_random_walk(3, 200, 200);
    report
        .violations
        .iter()
        .max_by_key(|v| v.trace.len())
        .expect("the walks find a violation")
        .trace
        .clone()
}

#[test]
fn traces_round_trip_through_json_and_replay_identically() {
    // Every buggy scenario that yields a witness quickly is one test case;
    // BUG-XII runs under fault injection so its crash transition is part of
    // the serialized trace.
    for (name, faults) in [
        ("bug-i-host-unreachable-after-moving", false),
        ("bug-v-packets-dropped-in-transition", false),
        ("bug-v-packets-dropped-in-transition", true),
        ("bug-viii-first-packet-dropped", false),
        ("bug-xii-packet-lost-on-switch-crash", true),
    ] {
        let checker = checker_for(name, faults);
        let report = checker.run();
        let violation = report
            .first_violation()
            .unwrap_or_else(|| panic!("{name} (faults={faults}) must produce a witness"));
        let trace = &violation.trace;

        // JSON round-trip is the identity on the typed representation...
        let json = trace.to_json();
        let parsed = Trace::from_json(&json).expect("emitted JSON parses");
        assert_eq!(&parsed, trace, "{name}: JSON round-trip must be lossless");
        // ...and canonical: serializing again is byte-identical.
        assert_eq!(parsed.to_json(), json, "{name}: to_json must be canonical");

        // Replay of the re-parsed trace reproduces the identical violating
        // fingerprint and verdict.
        let direct = checker.replay(trace);
        let reparsed = checker.replay(&parsed);
        assert!(direct.completed(), "{name}: witness replays cleanly");
        assert!(
            direct.reproduces(trace),
            "{name}: replay reproduces the recorded violation: {direct}"
        );
        assert_eq!(
            direct.final_fingerprint, reparsed.final_fingerprint,
            "{name}"
        );
        assert_eq!(direct.violations, reparsed.violations, "{name}");
        assert_eq!(direct.steps_executed, reparsed.steps_executed, "{name}");
    }
}

#[test]
fn replay_is_bit_deterministic_across_repeated_runs() {
    let checker = checker_for("bug-xii-packet-lost-on-switch-crash", true);
    let report = checker.run();
    let trace = &report.first_violation().expect("witness").trace;
    let json = trace.to_json();
    let baseline = checker.replay(trace);
    for _ in 0..3 {
        let again = checker.replay(&Trace::from_json(&json).expect("parses"));
        assert_eq!(again.final_fingerprint, baseline.final_fingerprint);
        assert_eq!(again.steps_executed, baseline.steps_executed);
        assert_eq!(again.violations, baseline.violations);
        assert_eq!(again.terminal, baseline.terminal);
    }
}

#[test]
fn minimize_shrinks_the_bug_v_walk_witness_by_40_percent() {
    let checker = walk_checker("bug-v-packets-dropped-in-transition");
    let witness = sloppy_witness(&checker);
    let report = checker.minimize(&witness).expect("minimize");

    assert!(report.minimized.len() <= witness.len(), "never grows");
    assert!(
        report.reduction_percent() >= 40.0,
        "expected ≥40% reduction, got {:.0}% ({} -> {})",
        report.reduction_percent(),
        witness.len(),
        report.minimized.len()
    );
    // Soundness: the minimized trace still violates the same property
    // under replay.
    assert_eq!(report.property, "NoForgottenPackets");
    let replay = checker.replay(&report.minimized);
    assert!(replay.completed(), "{replay}");
    assert!(replay.reproduced(&report.property), "{replay}");
    // Idempotence: minimizing the minimum is the identity.
    let again = checker.minimize(&report.minimized).expect("minimize again");
    assert_eq!(again.minimized.steps, report.minimized.steps);
}

#[test]
fn minimize_shrinks_the_bug_xii_fault_witness_by_40_percent() {
    let checker = walk_checker("bug-xii-packet-lost-on-switch-crash");
    let witness = sloppy_witness(&checker);
    let report = checker.minimize(&witness).expect("minimize");

    assert!(report.minimized.len() <= witness.len(), "never grows");
    assert!(
        report.reduction_percent() >= 40.0,
        "expected ≥40% reduction, got {:.0}% ({} -> {})",
        report.reduction_percent(),
        witness.len(),
        report.minimized.len()
    );
    assert_eq!(report.property, "NoAbandonedPackets");
    let replay = checker.replay(&report.minimized);
    assert!(replay.completed(), "{replay}");
    assert!(replay.reproduced(&report.property), "{replay}");
    // The fault transition survives minimization: without the crash there
    // is no violation to keep.
    assert!(
        report
            .minimized
            .steps
            .iter()
            .map(|s| s.transition())
            .any(|t| t.fault_counter_index().is_some()),
        "the crash must remain in the minimized trace:\n{}",
        report.minimized
    );
}

#[test]
fn bisect_pins_the_frontier_on_bug_v() {
    let checker = checker_for("bug-v-packets-dropped-in-transition", false);
    let report = checker.run();
    let trace = &report.first_violation().expect("witness").trace;
    let bisect = checker.bisect(trace, 0).expect("bisect");
    assert!(bisect.decided, "unbounded probes must decide");
    let k = bisect.first_unavoidable.expect("frontier");
    assert!(k >= 1, "BUG-V is not doomed from the initial state");
    assert!(k <= trace.len());
    assert!(bisect.culprit.is_some());
    // The frontier is stable across repeated runs (replay determinism).
    let again = checker.bisect(trace, 0).expect("bisect again");
    assert_eq!(again.first_unavoidable, bisect.first_unavoidable);
}

#[test]
fn bisect_blames_the_switch_crash_on_bug_xii() {
    let checker = checker_for("bug-xii-packet-lost-on-switch-crash", true);
    let report = checker.run();
    let trace = &report.first_violation().expect("witness").trace;
    let bisect = checker.bisect(trace, 0).expect("bisect");
    assert!(bisect.decided);
    let k = bisect.first_unavoidable.expect("frontier");
    assert!(k >= 1);
    let culprit = bisect.culprit.expect("culprit");
    assert!(
        culprit.fault_counter_index().is_some(),
        "the committing transition must be the injected fault, got '{culprit}'"
    );
}

#[test]
fn minimized_traces_survive_the_file_round_trip() {
    // What `nice minimize --out` writes is exactly what `nice replay` and
    // `nice timeline` read back.
    let checker = walk_checker("bug-xii-packet-lost-on-switch-crash");
    let witness = sloppy_witness(&checker);
    let minimized = checker.minimize(&witness).expect("minimize").minimized;
    let json = minimized.to_json();
    let parsed = Trace::from_json(&json).expect("parses");
    assert_eq!(parsed, minimized);
    let timeline = render_timeline(&checker, &parsed).expect("timeline");
    assert!(timeline.has_activity(), "lanes must not be empty");
    assert!(
        timeline.violation.is_some(),
        "the violation must be marked:\n{timeline}"
    );
}
