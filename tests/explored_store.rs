//! Tiered explored-set equivalence: the spill-to-disk store must be a pure
//! performance artifact, invisible in every verdict.
//!
//! Three invariants are pinned here:
//!
//! 1. **Tiered is exact.** With any memory budget — including a 1-byte
//!    budget that forces every shard cold immediately — the tiered store
//!    reports the same verdict and violation set as the in-memory store on
//!    the chain workload, BUG-V, and BUG-XII-under-faults, across 1 and 4
//!    workers and with POR on or off. At 1 worker the transition and state
//!    counts match *exactly*: spilling changes where fingerprints live, not
//!    which states get expanded.
//! 2. **Both schedulers agree.** Work-stealing and work-donation explore
//!    the same space: identical verdicts and violation sets at 4 workers,
//!    identical counters at 1 worker (where both degenerate to a single
//!    local stack).
//! 3. **Bitstate is sound-for-violations.** Lossy hashing may *miss* states
//!    (so a PASS is weaker, flagged via `CheckReport::lossy`) but never
//!    invents them: on a violation-free workload it finds nothing at any
//!    budget, and on a buggy workload every violation it reports is in the
//!    exact store's violation set. Checked with proptest over random
//!    memory budgets.

use nice::prelude::*;
use proptest::prelude::*;

/// The matrix scenarios: spec string + whether its fault plan is armed.
const SCENARIOS: &[(&str, bool)] = &[
    ("chain:5:2", false),
    ("bug-v-packets-dropped-in-transition", false),
    ("bug-xii-packet-lost-on-switch-crash", true),
];

fn scenario(spec: &str) -> Scenario {
    nice_apps::workloads::resolve(spec).expect("known scenario spec")
}

/// A full-space config: every violation, no budgets.
fn full_config(inject_faults: bool) -> CheckerConfig {
    CheckerConfig {
        stop_at_first_violation: false,
        max_transitions: 0,
        inject_faults,
        ..CheckerConfig::default()
    }
}

fn run(spec: &str, config: CheckerConfig) -> CheckReport {
    ModelChecker::new(scenario(spec), config).run()
}

/// The sorted, deduplicated `(property, message)` set — the verdict
/// content, independent of discovery order.
fn violation_set(report: &CheckReport) -> Vec<(String, String)> {
    let mut set: Vec<(String, String)> = report
        .violations
        .iter()
        .map(|v| (v.property.clone(), v.message.clone()))
        .collect();
    set.sort();
    set.dedup();
    set
}

fn assert_same_verdict(exact: &CheckReport, other: &CheckReport, label: &str) {
    assert_eq!(
        exact.passed(),
        other.passed(),
        "{label}: verdicts disagree (exact passed={}, other passed={})",
        exact.passed(),
        other.passed()
    );
    assert_eq!(
        violation_set(exact),
        violation_set(other),
        "{label}: violation sets disagree"
    );
}

/// Tiered ≡ mem across the scenario × workers × POR matrix; exact counter
/// equality on the deterministic 1-worker legs.
#[test]
fn tiered_store_is_equivalent_to_in_memory() {
    for &(spec, faults) in SCENARIOS {
        for reduction in [ReductionKind::None, ReductionKind::Por] {
            for workers in [1usize, 4] {
                let base = full_config(faults)
                    .with_reduction(reduction)
                    .with_workers(workers);
                let mem = run(spec, base.clone().with_explored(ExploredMode::Mem));
                // A 1-byte budget makes every shard over-budget from the
                // first insert: the run exercises spill, bloom rebuild and
                // disk probes, not the in-memory fast path.
                let tiered = run(
                    spec,
                    base.with_explored(ExploredMode::Tiered).with_mem_limit(1),
                );
                let label = format!("{spec} workers={workers} reduction={reduction:?}");
                assert_same_verdict(&mem, &tiered, &label);
                assert!(!mem.lossy, "{label}: mem store is exact");
                assert!(!tiered.lossy, "{label}: tiered store is exact");
                if workers == 1 {
                    assert_eq!(
                        mem.stats.transitions, tiered.stats.transitions,
                        "{label}: transitions"
                    );
                    assert_eq!(
                        mem.stats.unique_states, tiered.stats.unique_states,
                        "{label}: unique states"
                    );
                    assert_eq!(
                        mem.stats.terminal_states, tiered.stats.terminal_states,
                        "{label}: terminal states"
                    );
                    assert_eq!(
                        mem.stats.dedup_hits, tiered.stats.dedup_hits,
                        "{label}: dedup hits"
                    );
                }
            }
        }
    }
}

/// The forced-spill chain run actually takes the disk path and reports it.
#[test]
fn tiered_run_past_the_memory_limit_reports_spill_counters() {
    let report = run(
        "chain:5:2",
        full_config(false)
            .with_explored(ExploredMode::Tiered)
            .with_mem_limit(1),
    );
    assert!(report.passed(), "chain:5:2 is violation-free");
    assert!(
        report.stats.spilled_shards > 0,
        "a 1-byte budget must force cold-shard spills (got {})",
        report.stats.spilled_shards
    );
    assert!(
        report.stats.peak_explored_bytes > 0,
        "the store's high-water mark must be recorded"
    );
    assert!(
        report.stats.filter_hits + report.stats.disk_probes > 0,
        "revisits of spilled shards must consult the bloom filter or disk"
    );

    // The in-memory store reports a peak but never spills.
    let mem = run("chain:5:2", full_config(false));
    assert!(mem.stats.peak_explored_bytes > 0);
    assert_eq!(mem.stats.spilled_shards, 0);
    assert_eq!(mem.stats.disk_probes, 0);
}

/// Work-stealing and donation schedulers explore the same space.
#[test]
fn schedulers_agree_on_verdicts_and_sequential_counters() {
    for &(spec, faults) in SCENARIOS {
        // 1 worker: both schedulers degenerate to one local stack, so every
        // counter must match, steal count included (zero).
        let steal = run(
            spec,
            full_config(faults).with_scheduler(SchedulerKind::WorkStealing),
        );
        let donate = run(
            spec,
            full_config(faults).with_scheduler(SchedulerKind::Donation),
        );
        let label = format!("{spec} workers=1");
        assert_same_verdict(&steal, &donate, &label);
        assert_eq!(steal.stats.transitions, donate.stats.transitions, "{label}");
        assert_eq!(
            steal.stats.unique_states, donate.stats.unique_states,
            "{label}"
        );
        assert_eq!(steal.stats.work_steals, 0, "{label}: nothing to steal");

        // 4 workers: verdict-level agreement (counters may differ — racing
        // workers discover duplicate states in different interleavings).
        let steal = run(
            spec,
            full_config(faults)
                .with_workers(4)
                .with_scheduler(SchedulerKind::WorkStealing),
        );
        let donate = run(
            spec,
            full_config(faults)
                .with_workers(4)
                .with_scheduler(SchedulerKind::Donation),
        );
        assert_same_verdict(&steal, &donate, &format!("{spec} workers=4"));
    }
}

proptest! {
    /// Bitstate never invents a violation: on the violation-free chain it
    /// passes at every memory budget, and the report is flagged lossy.
    #[test]
    fn bitstate_never_reports_spurious_violations(mem_limit in 1u64..(1 << 16)) {
        let report = run(
            "chain:3:1",
            full_config(false)
                .with_explored(ExploredMode::Bitstate)
                .with_mem_limit(mem_limit),
        );
        prop_assert!(
            report.passed(),
            "bitstate invented a violation at mem_limit={}: {:?}",
            mem_limit,
            violation_set(&report)
        );
        prop_assert!(report.lossy, "bitstate reports must carry the lossy flag");
    }

    /// On a buggy workload, every violation bitstate reports is one the
    /// exact store also reports — lossy hashing can only miss, never add.
    #[test]
    fn bitstate_violations_are_a_subset_of_the_exact_set(mem_limit in 1u64..(1 << 16)) {
        // The exact reference search is deterministic: run it once, share it
        // across all generated cases.
        static EXACT: std::sync::OnceLock<Vec<(String, String)>> = std::sync::OnceLock::new();
        let exact_set = EXACT.get_or_init(|| {
            violation_set(&run("bug-v-packets-dropped-in-transition", full_config(false)))
        });
        let lossy = run(
            "bug-v-packets-dropped-in-transition",
            full_config(false)
                .with_explored(ExploredMode::Bitstate)
                .with_mem_limit(mem_limit),
        );
        prop_assert!(lossy.lossy);
        for v in violation_set(&lossy) {
            prop_assert!(
                exact_set.contains(&v),
                "bitstate reported a violation the exact search never saw: {:?}",
                v
            );
        }
    }
}
