//! Determinism guarantees of the exploration engine, exercised through the
//! public API on real application scenarios:
//!
//! (a) repeated runs of the same configuration agree bit-for-bit,
//! (b) all frontier-storage modes (full, replay, checkpointed replay)
//!     reconstruct the same search, and
//! (c) the parallel engine visits the same state space as the sequential
//!     one and finds the same set of violated properties (order-insensitive;
//!     traces may differ because workers race to discover states).

use nice::prelude::*;
use nice::scenarios::{bug_scenario, BugId};

fn violated_properties(report: &CheckReport) -> Vec<String> {
    let mut names: Vec<String> = report
        .violations
        .iter()
        .map(|v| v.property.clone())
        .collect();
    names.sort();
    names
}

#[test]
fn repeated_runs_are_identical() {
    let run = || {
        Nice::new(bug_scenario(BugId::BugVIII))
            .with_max_transitions(100_000)
            .check()
    };
    let a = run();
    let b = run();
    assert_eq!(a.stats.transitions, b.stats.transitions);
    assert_eq!(a.stats.unique_states, b.stats.unique_states);
    assert_eq!(a.stats.max_depth, b.stats.max_depth);
    assert_eq!(
        a.first_violation().map(|v| v.trace.clone()),
        b.first_violation().map(|v| v.trace.clone())
    );
}

#[test]
fn storage_modes_reconstruct_the_same_search() {
    // A passing scenario explored exhaustively: every storage mode must see
    // exactly the same states and transitions.
    let scenario = || bug_scenario(BugId::BugIX);
    let configs = [
        CheckerConfig::default(),
        CheckerConfig::default().with_state_storage(StateStorage::Replay),
        CheckerConfig::default().with_state_storage(StateStorage::Checkpoint { interval: 4 }),
        CheckerConfig::default().with_state_storage(StateStorage::Checkpoint { interval: 7 }),
    ];
    let reports: Vec<CheckReport> = configs
        .into_iter()
        .map(|config| {
            Nice::new(scenario())
                .with_config(config)
                .with_max_transitions(100_000)
                .check()
        })
        .collect();
    let baseline = &reports[0];
    assert!(!baseline.passed(), "BUG-IX must be found");
    for (i, report) in reports.iter().enumerate().skip(1) {
        assert_eq!(
            baseline.stats.transitions, report.stats.transitions,
            "config {i}"
        );
        assert_eq!(
            baseline.stats.unique_states, report.stats.unique_states,
            "config {i}"
        );
        assert_eq!(
            baseline.first_violation().map(|v| v.trace.clone()),
            report.first_violation().map(|v| v.trace.clone()),
            "config {i}"
        );
    }
}

#[test]
fn single_worker_parallel_config_is_the_sequential_engine() {
    // workers = 1 runs the canonical sequential code path: identical
    // statistics and identical violation traces, by construction.
    let base = Nice::new(bug_scenario(BugId::BugVIII)).with_max_transitions(100_000);
    let sequential = base.check();
    let one_worker = Nice::new(bug_scenario(BugId::BugVIII))
        .with_config(CheckerConfig::default().with_workers(1))
        .with_max_transitions(100_000)
        .check();
    assert_eq!(sequential.stats.transitions, one_worker.stats.transitions);
    assert_eq!(
        sequential.stats.unique_states,
        one_worker.stats.unique_states
    );
    assert_eq!(
        sequential.first_violation().map(|v| v.trace.clone()),
        one_worker.first_violation().map(|v| v.trace.clone())
    );
}

#[test]
fn parallel_workers_agree_with_sequential_on_a_passing_scenario() {
    // Exhaustive search of a scenario with no violations: state and
    // transition counts must match exactly for any worker count.
    let scenario = || {
        use nice::apps::pyswitch::{PySwitchApp, PySwitchVariant};
        use nice::mc::testutil::ping_scenario_with_app;
        ping_scenario_with_app(Box::new(PySwitchApp::new(PySwitchVariant::Original)), 2)
    };
    let sequential = Nice::new(scenario())
        .with_config(CheckerConfig::default().with_stop_at_first(false))
        .check();
    assert!(sequential.passed());
    for workers in [2, 4] {
        let parallel = Nice::new(scenario())
            .with_config(
                CheckerConfig::default()
                    .with_stop_at_first(false)
                    .with_workers(workers),
            )
            .check();
        assert!(parallel.passed(), "{workers} workers");
        assert_eq!(
            sequential.stats.unique_states, parallel.stats.unique_states,
            "{workers} workers"
        );
        assert_eq!(
            sequential.stats.transitions, parallel.stats.transitions,
            "{workers} workers"
        );
    }
}

#[test]
fn parallel_workers_find_the_same_violations_order_insensitive() {
    // Collect-all search of a buggy scenario: the set of violated properties
    // is a function of the reachable state space, not the schedule.
    let run = |workers: usize| {
        Nice::new(bug_scenario(BugId::BugIX))
            .with_config(
                CheckerConfig::default()
                    .with_stop_at_first(false)
                    .with_workers(workers),
            )
            .with_max_transitions(100_000)
            .check()
    };
    let sequential = run(1);
    // CI pins NICE_TEST_WORKERS=4 to exercise the parallel engine there.
    let workers = std::env::var("NICE_TEST_WORKERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    let parallel = run(workers);
    assert!(!sequential.passed());
    assert!(!parallel.passed());
    assert_eq!(
        violated_properties(&sequential),
        violated_properties(&parallel)
    );
    assert_eq!(sequential.stats.unique_states, parallel.stats.unique_states);
    assert_eq!(sequential.stats.transitions, parallel.stats.transitions);
}
