//! Equivalence of the reduced and unreduced searches, exercised through the
//! public API on the bundled application scenarios.
//!
//! The partial-order reduction must be *transparent*: FullDfs+POR explores a
//! subset of the transitions of FullDfs alone, but reports the same verdict,
//! the same set of violated properties, and a shortest violation trace of
//! the same length (pruned interleavings are commutations, so they cannot
//! shorten a witness). The suite runs every scenario under 1 worker and
//! under `NICE_TEST_WORKERS` (default 4) workers, so CI exercises the sleep
//! sets both in the deterministic sequential engine and in the racy parallel
//! one.

use nice::prelude::*;
use nice::scenarios::{bug_scenario, BugId};
use nice_bench::chain_ping_workload;

/// Worker count for the parallel legs (CI sets `NICE_TEST_WORKERS=4`).
fn test_workers() -> usize {
    std::env::var("NICE_TEST_WORKERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4)
}

/// The pyswitch ping workload stretched over a chain of switches — the
/// exploration-engine benchmark scenario, shared with the bench bins.
fn chain_ping_scenario(switches: u32, pings: u32) -> Scenario {
    chain_ping_workload(switches, pings)
}

/// Violated property names, sorted and deduplicated.
fn violated_properties(report: &CheckReport) -> Vec<String> {
    let mut names: Vec<String> = report
        .violations
        .iter()
        .map(|v| v.property.clone())
        .collect();
    names.sort();
    names.dedup();
    names
}

/// Length of the shortest violation trace per property.
fn shortest_traces(report: &CheckReport) -> Vec<(String, usize)> {
    let mut out: std::collections::BTreeMap<String, usize> = std::collections::BTreeMap::new();
    for v in &report.violations {
        let entry = out.entry(v.property.clone()).or_insert(usize::MAX);
        *entry = (*entry).min(v.trace.len());
    }
    out.into_iter().collect()
}

fn run(scenario: Scenario, reduction: ReductionKind, workers: usize) -> CheckReport {
    Nice::new(scenario)
        .collect_all_violations()
        .with_reduction(reduction)
        .with_workers(workers)
        .check()
}

/// The core equivalence assertion: FullDfs+POR vs FullDfs on one scenario
/// under one worker count.
fn assert_equivalent(make: impl Fn() -> Scenario, workers: usize, label: &str) {
    let full = run(make(), ReductionKind::None, workers);
    let por = run(make(), ReductionKind::Por, workers);
    assert!(
        !full.stats.truncated && !por.stats.truncated,
        "{label}: equivalence requires exhaustive searches"
    );
    assert_eq!(full.passed(), por.passed(), "{label}: verdicts differ");
    assert_eq!(
        violated_properties(&full),
        violated_properties(&por),
        "{label}: violated property sets differ"
    );
    // Witness lengths are only comparable on the deterministic sequential
    // engine: parallel workers race to claim each state's fingerprint, so
    // the trace recorded for a violating state is whichever path won — a
    // scheduling accident, not the true shortest witness.
    if workers == 1 {
        assert_eq!(
            shortest_traces(&full),
            shortest_traces(&por),
            "{label}: shortest witnesses differ"
        );
    }
    assert!(
        por.stats.transitions <= full.stats.transitions,
        "{label}: POR explored more transitions ({}) than the full search ({})",
        por.stats.transitions,
        full.stats.transitions
    );
    assert_eq!(
        full.stats.terminal_states, por.stats.terminal_states,
        "{label}: terminal coverage differs"
    );
}

#[test]
fn pyswitch_chain_equivalence_under_one_and_many_workers() {
    for workers in [1, test_workers()] {
        assert_equivalent(
            || chain_ping_scenario(5, 2),
            workers,
            &format!("pyswitch-chain x{workers}"),
        );
    }
}

#[test]
fn pyswitch_chain_reduction_meets_the_thirty_percent_bar() {
    let full = run(chain_ping_scenario(5, 2), ReductionKind::None, 1);
    let por = run(chain_ping_scenario(5, 2), ReductionKind::Por, 1);
    assert_eq!(full.stats.transitions, 11044, "baseline moved; update docs");
    let reduction = 1.0 - por.stats.transitions as f64 / full.stats.transitions as f64;
    assert!(
        reduction >= 0.30,
        "POR must prune >=30% of the chain transitions, got {:.1}% ({} vs {})",
        reduction * 100.0,
        por.stats.transitions,
        full.stats.transitions
    );
    assert!(por.stats.pruned_by_por > 0);
}

#[test]
fn load_balancer_bug_v_equivalence() {
    for workers in [1, test_workers()] {
        assert_equivalent(
            || bug_scenario(BugId::BugV),
            workers,
            &format!("loadbalancer-bug-v x{workers}"),
        );
    }
}

#[test]
fn energyte_equivalence() {
    for workers in [1, test_workers()] {
        assert_equivalent(
            || bug_scenario(BugId::BugXI),
            workers,
            &format!("energyte-bug-xi x{workers}"),
        );
    }
}

#[test]
fn por_composes_with_heuristic_strategies() {
    // The heuristic strategies are themselves unsound-by-design filters, so
    // POR on top is only required to stay within each strategy's space and
    // keep its verdict on the bundled pass/fail scenarios.
    for strategy in [
        StrategyKind::NoDelay,
        StrategyKind::FlowIr,
        StrategyKind::Unusual,
    ] {
        let base = Nice::new(chain_ping_scenario(4, 2))
            .collect_all_violations()
            .with_strategy(strategy)
            .check();
        let reduced = Nice::new(chain_ping_scenario(4, 2))
            .collect_all_violations()
            .with_strategy(strategy)
            .with_reduction(ReductionKind::Por)
            .check();
        assert_eq!(base.passed(), reduced.passed(), "{strategy:?}");
        assert!(
            reduced.stats.transitions <= base.stats.transitions,
            "{strategy:?}: {} vs {}",
            reduced.stats.transitions,
            base.stats.transitions
        );
    }
}
