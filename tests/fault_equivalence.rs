//! Equivalence guarantees of the fault-injection layer, exercised through
//! the public API.
//!
//! Two invariants are pinned here:
//!
//! 1. **Faults off is free.** A scenario whose fault plan is empty — or
//!    whose (non-empty) plan is dormant because the checker runs without
//!    `inject_faults` — produces a report bit-identical to today's: the same
//!    transition and state counts, the same verdict, the same violated
//!    properties and witness lengths, across sequential and parallel engines
//!    and with POR on or off.
//! 2. **POR stays sound under faults.** With injection on, FullDfs+POR
//!    reports the same verdict and violated-property set as FullDfs alone
//!    while exploring no more (and on the chain workload strictly fewer)
//!    transitions.

use nice::prelude::*;
use nice::scenarios::{bug_scenario, BugId};
use nice_bench::{chain_fault_workload, chain_ping_workload};

/// Worker count for the parallel legs (CI sets `NICE_TEST_WORKERS=4`).
fn test_workers() -> usize {
    std::env::var("NICE_TEST_WORKERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4)
}

/// Violated property names, sorted and deduplicated.
fn violated_properties(report: &CheckReport) -> Vec<String> {
    let mut names: Vec<String> = report
        .violations
        .iter()
        .map(|v| v.property.clone())
        .collect();
    names.sort();
    names.dedup();
    names
}

/// Length of the shortest violation trace per property.
fn shortest_traces(report: &CheckReport) -> Vec<(String, usize)> {
    let mut out: std::collections::BTreeMap<String, usize> = std::collections::BTreeMap::new();
    for v in &report.violations {
        let entry = out.entry(v.property.clone()).or_insert(usize::MAX);
        *entry = (*entry).min(v.trace.len());
    }
    out.into_iter().collect()
}

fn run(scenario: Scenario, config: CheckerConfig) -> CheckReport {
    Nice::new(scenario)
        .with_config(config)
        .collect_all_violations()
        .check()
}

/// Asserts that two exhaustive reports describe the same search: identical
/// counts, verdicts, violated properties, and (sequentially) witnesses.
fn assert_identical_reports(a: &CheckReport, b: &CheckReport, workers: usize, label: &str) {
    assert!(
        !a.stats.truncated && !b.stats.truncated,
        "{label}: equivalence requires exhaustive searches"
    );
    // Transition counts are only comparable on the deterministic sequential
    // engine: parallel workers race to claim fingerprints, so the exact
    // number of executed transitions (and the sleep sets POR builds from
    // them) varies run to run even without faults. State coverage does not.
    if workers == 1 {
        assert_eq!(
            a.stats.transitions, b.stats.transitions,
            "{label}: transition counts differ"
        );
    }
    assert_eq!(
        a.stats.unique_states, b.stats.unique_states,
        "{label}: unique state counts differ"
    );
    assert_eq!(
        a.stats.terminal_states, b.stats.terminal_states,
        "{label}: terminal coverage differs"
    );
    assert_eq!(a.passed(), b.passed(), "{label}: verdicts differ");
    assert_eq!(
        violated_properties(a),
        violated_properties(b),
        "{label}: violated property sets differ"
    );
    if workers == 1 {
        assert_eq!(
            shortest_traces(a),
            shortest_traces(b),
            "{label}: shortest witnesses differ"
        );
    }
}

/// The faults-off matrix: for each workload, each worker count and each
/// reduction, (a) an *empty* plan with injection on and (b) a *non-empty*
/// plan with injection off must both reproduce the plain report exactly.
#[test]
fn dormant_fault_plans_are_bit_identical_to_plain_runs() {
    type Workload = (&'static str, fn() -> Scenario);
    let workloads: [Workload; 2] = [
        ("pyswitch-chain", || chain_ping_workload(3, 1)),
        ("loadbalancer-bug-v", || bug_scenario(BugId::BugV)),
    ];
    for (name, make) in workloads {
        for workers in [1, test_workers()] {
            for reduction in [ReductionKind::None, ReductionKind::Por] {
                let config = CheckerConfig::default()
                    .with_workers(workers)
                    .with_reduction(reduction);
                let label = format!("{name} x{workers} {reduction:?}");
                let plain = run(make(), config.clone());

                let empty_plan_injecting = run(
                    make().with_fault_plan(FaultPlan::none()),
                    config.clone().with_fault_injection(true),
                );
                assert_identical_reports(
                    &plain,
                    &empty_plan_injecting,
                    workers,
                    &format!("{label} (empty plan, injection on)"),
                );
                assert!(
                    !empty_plan_injecting.stats.faults.any(),
                    "{label}: an empty plan injected faults"
                );

                let armed_plan_dormant = run(
                    make().with_fault_plan(FaultPlan::crashes(1)),
                    config.clone(),
                );
                assert_identical_reports(
                    &plain,
                    &armed_plan_dormant,
                    workers,
                    &format!("{label} (armed plan, injection off)"),
                );
                assert!(
                    !armed_plan_dormant.stats.faults.any(),
                    "{label}: a dormant plan injected faults"
                );
            }
        }
    }
}

/// POR under faults: same verdict and violated properties as the full
/// search, never more transitions, and on the chain workload a real
/// reduction — the footprints of the fault transitions keep the sleep sets
/// pruning.
#[test]
fn por_reduces_the_chain_under_faults_without_changing_the_verdict() {
    let faulty = |reduction: ReductionKind| {
        run(
            chain_fault_workload(3, 1),
            CheckerConfig::default()
                .with_reduction(reduction)
                .with_fault_injection(true),
        )
    };
    let full = faulty(ReductionKind::None);
    let por = faulty(ReductionKind::Por);
    assert!(!full.stats.truncated && !por.stats.truncated);
    assert!(
        full.stats.faults.any() && por.stats.faults.any(),
        "fault transitions were explored on both sides"
    );
    assert_eq!(full.passed(), por.passed(), "verdicts differ under faults");
    assert_eq!(
        violated_properties(&full),
        violated_properties(&por),
        "violated property sets differ under faults"
    );
    assert_eq!(
        full.stats.terminal_states, por.stats.terminal_states,
        "terminal coverage differs under faults"
    );
    assert!(
        por.stats.transitions < full.stats.transitions,
        "POR stopped reducing the chain under faults ({} vs {})",
        por.stats.transitions,
        full.stats.transitions
    );
    assert!(por.stats.pruned_by_por > 0);
}

/// The fault-dependent registry bug keeps its violation set with POR on or
/// off, sequentially and in parallel — the acceptance bar for layering new
/// transition kinds under the reduction.
#[test]
fn bug_xii_violations_survive_por_and_parallelism() {
    for workers in [1, test_workers()] {
        let hunt = |reduction: ReductionKind| {
            run(
                bug_scenario(BugId::BugXII),
                CheckerConfig::default()
                    .with_workers(workers)
                    .with_reduction(reduction)
                    .with_fault_injection(true),
            )
        };
        let full = hunt(ReductionKind::None);
        let por = hunt(ReductionKind::Por);
        assert_eq!(
            violated_properties(&full),
            vec!["NoAbandonedPackets".to_string()],
            "x{workers}: the crash bug must be found by the full search"
        );
        assert_eq!(
            violated_properties(&full),
            violated_properties(&por),
            "x{workers}: POR changed the violation set"
        );
        assert!(por.stats.transitions <= full.stats.transitions);
    }
}
