//! Cross-crate integration tests: the full pipeline (topology → controller
//! application → symbolic discovery → model checking → violation traces)
//! exercised through the public `nice` API.

use nice::prelude::*;
use nice::scenarios::{bug_scenario, fixed_scenario, BugId};

#[test]
fn quickstart_pipeline_finds_bug_ii_and_fix_passes() {
    let report = Nice::new(bug_scenario(BugId::BugII))
        .with_max_transitions(300_000)
        .check();
    assert!(!report.passed());
    let violation = report.first_violation().unwrap();
    assert_eq!(violation.property, "StrictDirectPaths");
    assert!(violation.trace.len() >= 3, "a meaningful trace is reported");

    let fixed = Nice::new(fixed_scenario(BugId::BugII).unwrap())
        .with_max_transitions(300_000)
        .check();
    assert!(fixed.passed(), "{fixed}");
}

#[test]
fn violation_traces_replay_deterministically() {
    // Running the same configuration twice yields identical statistics and
    // identical traces — the determinism the paper relies on to reproduce
    // violations.
    let run = || {
        Nice::new(bug_scenario(BugId::BugVIII))
            .with_max_transitions(100_000)
            .check()
    };
    let a = run();
    let b = run();
    assert_eq!(a.stats.transitions, b.stats.transitions);
    assert_eq!(a.stats.unique_states, b.stats.unique_states);
    assert_eq!(
        a.first_violation().map(|v| v.trace.clone()),
        b.first_violation().map(|v| v.trace.clone())
    );
}

#[test]
fn replay_storage_matches_full_storage_through_public_api() {
    let full = Nice::new(bug_scenario(BugId::BugIV))
        .with_max_transitions(100_000)
        .check();
    let replay = Nice::new(bug_scenario(BugId::BugIV))
        .with_max_transitions(100_000)
        .with_state_storage(StateStorage::Replay)
        .check();
    assert_eq!(full.passed(), replay.passed());
    assert_eq!(full.stats.unique_states, replay.stats.unique_states);
}

#[test]
fn strategies_shrink_the_ping_workload_state_space() {
    // Build the Section 7 ping workload through the public API and verify the
    // headline claim: the heuristic strategies explore no more transitions
    // than the full search.
    use nice::apps::pyswitch::{PySwitchApp, PySwitchVariant};
    use nice::mc::testutil::ping_scenario_with_app;

    let scenario = || {
        let mut s =
            ping_scenario_with_app(Box::new(PySwitchApp::new(PySwitchVariant::Original)), 2);
        s.properties.clear(); // pure state-space measurement
        s
    };
    let full = Nice::new(scenario()).collect_all_violations().check();
    for strategy in [
        StrategyKind::NoDelay,
        StrategyKind::FlowIr,
        StrategyKind::Unusual,
    ] {
        let reduced = Nice::new(scenario())
            .with_strategy(strategy)
            .collect_all_violations()
            .check();
        assert!(
            reduced.stats.transitions <= full.stats.transitions,
            "{strategy:?}: {} > {}",
            reduced.stats.transitions,
            full.stats.transitions
        );
    }
}

#[test]
fn symbolic_discovery_feeds_the_search_through_the_public_api() {
    // The load-balancer scenarios rely on discover_packets to generate ARP
    // and TCP packet classes; a successful BUG-VI detection implies the
    // whole MC + SE pipeline worked.
    let report = Nice::new(bug_scenario(BugId::BugVI))
        .with_max_transitions(200_000)
        .check();
    assert!(!report.passed());
    assert_eq!(
        report.first_violation().unwrap().property,
        "NoForgottenPackets"
    );
    assert!(report.stats.symbolic_executions >= 1);
}
