//! # nice
//!
//! Umbrella crate for the NICE reproduction: re-exports the public API of
//! [`nice_core`] (which in turn exposes the OpenFlow substrate, the symbolic
//! engine, the controller platform, the host models, the model checker and
//! the evaluated applications) and hosts the runnable examples and the
//! cross-crate integration tests.
//!
//! See `README.md` for a tour and `DESIGN.md` / `EXPERIMENTS.md` for the
//! mapping between the paper and this implementation.

#![forbid(unsafe_code)]

pub use nice_core::*;

/// The crate version (useful for examples printing a banner).
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

#[cfg(test)]
mod tests {
    #[test]
    fn version_is_set() {
        assert!(!super::VERSION.is_empty());
    }

    #[test]
    fn reexports_are_reachable() {
        // The facade and the main sub-crates are visible through the
        // umbrella crate.
        let _ = std::any::type_name::<super::Nice>();
        let _ = std::any::type_name::<super::mc::ModelChecker>();
        let _ = std::any::type_name::<super::openflow::Packet>();
        let _ = std::any::type_name::<super::sym::SymValue>();
    }
}
